//! # exec — persistent worker pool and per-thread fork arenas
//!
//! Shared execution substrate for every parallel loop in the reproduction:
//! the suite grid (`harness::sweeps`), the fork–pre-execute oracle
//! (`pcstall::oracle`) and the scaling benches all map over one
//! [`WorkerPool`] instead of spawning threads per call.
//!
//! Design constraints (set by the oracle, the hottest user):
//!
//! * **Persistent workers.** A pool spawns its threads once; each
//!   [`WorkerPool::map`] broadcasts a job to the already-running workers
//!   via a condvar, so steady-state epoch sampling pays no thread spawn.
//!   Worker threads persisting is also what makes [`with_arena`] useful:
//!   thread-local scratch (e.g. a forked `Gpu`) survives across jobs.
//! * **Deterministic results.** Items are load-balanced dynamically (a
//!   shared atomic cursor), but every result lands in the slot indexed by
//!   its item, so the output order — and content, for a deterministic
//!   `f` — is bit-for-bit independent of the worker count.
//! * **Budgeted nesting.** A `map` issued from inside a pool worker runs
//!   inline on that worker (the outer parallel level wins); grid-level ×
//!   oracle-level nesting therefore never oversubscribes or deadlocks.
//! * **std only.** The build environment resolves crates offline; the pool
//!   is condvars + atomics, no external runtime.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

thread_local! {
    /// Whether the current thread is a pool worker (nested maps inline).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread arena storage, keyed by concrete type (see [`with_arena`]).
    static ARENAS: RefCell<Vec<Box<dyn Any + Send>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `body` with a mutable, thread-local, type-keyed arena value.
///
/// The first call on a given thread (per type `T`) constructs the arena
/// with `init`; later calls on the same thread reuse the same value, so any
/// allocations `T` holds (a forked `Gpu`, telemetry buffers) amortize
/// across calls. Pool workers are persistent, which is what makes these
/// arenas effective: an oracle job scheduled onto the same worker next
/// epoch finds last epoch's fork ready to be `clone_from`-refreshed.
///
/// Nesting is safe (the value is checked out while `body` runs, so an inner
/// `with_arena::<T>` simply constructs a second instance), and a panicking
/// `body` discards the checked-out value rather than returning poisoned
/// state to the arena.
pub fn with_arena<T: Any + Send, R>(init: impl FnOnce() -> T, body: impl FnOnce(&mut T) -> R) -> R {
    let mut arena: Box<T> = ARENAS
        .with(|v| {
            let mut v = v.borrow_mut();
            v.iter().position(|b| b.is::<T>()).map(|i| v.swap_remove(i))
        })
        .map(|b| b.downcast::<T>().expect("arena entry matched by type"))
        .unwrap_or_else(|| Box::new(init()));
    let out = body(&mut arena);
    ARENAS.with(|v| v.borrow_mut().push(arena));
    out
}

/// Whether the current thread is executing a [`WorkerPool`] job (in which
/// case further `map` calls run inline instead of re-entering the pool).
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// A broadcast job: workers call `run_worker` until the job's items are
/// exhausted.
trait RunJob: Sync {
    fn run_worker(&self);
}

/// Lifetime-erased pointer to the submitter's stack-held job. Sound
/// because the submitter retracts the job and waits for `running == 0`
/// before the pointee drops (see [`WorkerPool::map_capped`]).
struct JobHandle(*const (dyn RunJob + 'static));
unsafe impl Send for JobHandle {}

struct PoolState {
    job: Option<JobHandle>,
    /// Bumped on every publish so workers distinguish new jobs from
    /// spurious wakeups and from jobs they already finished.
    generation: u64,
    /// Workers currently inside `run_worker`.
    running: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Locks ignoring poison: a panicking `f` unwinds through pool frames, but
/// every pool invariant is re-established before the panic is resumed, so
/// the poison flag carries no information here.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A persistent pool of worker threads executing order-preserving parallel
/// maps.
///
/// `WorkerPool::new(n)` is a parallelism degree of `n`: it spawns `n - 1`
/// workers, and the thread calling [`WorkerPool::map`] participates as the
/// n-th lane. `new(1)` therefore spawns nothing and maps run inline —
/// the pool degrades to a plain serial loop with zero synchronization.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes submitters: one broadcast job at a time.
    submit: Mutex<()>,
    threads: usize,
    handles: Vec<thread::JoinHandle<()>>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads).finish_non_exhaustive()
    }
}

fn worker_loop(shared: Arc<Shared>) {
    IN_WORKER.with(|f| f.set(true));
    let mut seen = 0u64;
    let mut guard = lock(&shared.state);
    loop {
        if guard.shutdown {
            return;
        }
        if guard.generation != seen {
            seen = guard.generation;
            if let Some(JobHandle(ptr)) = guard.job {
                guard.running += 1;
                drop(guard);
                // SAFETY: the submitter keeps the pointee alive until
                // `running` returns to zero, which cannot happen before the
                // decrement below.
                let job = unsafe { &*ptr };
                // Panics inside f are captured per-item by the job itself;
                // this outer guard only keeps the accounting alive if the
                // job's own bookkeeping panics.
                let _ = catch_unwind(AssertUnwindSafe(|| job.run_worker()));
                guard = lock(&shared.state);
                guard.running -= 1;
                if guard.running == 0 {
                    shared.done_cv.notify_all();
                }
                continue;
            }
        }
        guard = wait(&shared.work_cv, guard);
    }
}

/// Cooperative cancellation handle handed to every [`WorkerPool::map_watchdog`]
/// item. The watchdog thread flips it when the item's wall-clock deadline
/// passes; a well-behaved `f` observes [`CancelToken::is_cancelled`] (or
/// blocks in [`CancelToken::park`]) and gives up by returning `None`.
/// Cancellation is cooperative by design: truly wedged foreign code cannot
/// be killed from outside without leaking lane state, so the contract is
/// that long-running work checks its token at natural boundaries (the
/// harness checks between simulation epochs).
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation and wakes any parked waiter.
    pub fn cancel(&self) {
        *lock(&self.flag) = true;
        self.cv.notify_all();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        *lock(&self.flag)
    }

    /// Blocks until cancelled or until `cap` elapses; returns `true` iff
    /// the wait ended in cancellation. This is the hook chaos-injected
    /// "hangs" park on, so a watchdog can reclaim the lane promptly.
    pub fn park(&self, cap: Duration) -> bool {
        let deadline = Instant::now() + cap;
        let mut g = lock(&self.flag);
        while !*g {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            g = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
        true
    }

    /// Clears a previous cancellation before a retry.
    fn reset(&self) {
        *lock(&self.flag) = false;
    }
}

/// Per-item start stamp value meaning "finished" (no longer watched).
const FINISHED: u64 = u64::MAX;
/// Watchdog sweep interval.
const WATCHDOG_POLL: Duration = Duration::from_millis(2);

/// Milliseconds since the process-local monotonic epoch (heartbeat clock
/// for lane stamps; offset by +1 when stored so 0 can mean "not started").
fn now_ms() -> u64 {
    static CLOCK: OnceLock<Instant> = OnceLock::new();
    CLOCK.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// Joins the watchdog thread on drop (including unwind paths), so a
/// panicking map never leaks a poller holding `Arc`s.
struct WatchdogGuard {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Spawns the deadline poller: every [`WATCHDOG_POLL`] it cancels the token
/// of any in-flight item whose heartbeat stamp is older than `deadline`.
/// The poller holds its own `Arc`s, so it is safe independent of the job's
/// stack frame.
fn spawn_watchdog(
    tokens: &Arc<Vec<CancelToken>>,
    started: &Arc<Vec<AtomicU64>>,
    deadline: Duration,
) -> WatchdogGuard {
    let stop = Arc::new(AtomicBool::new(false));
    let (tokens, started, stop2) = (Arc::clone(tokens), Arc::clone(started), Arc::clone(&stop));
    let deadline_ms = (deadline.as_millis() as u64).max(1);
    let handle = thread::Builder::new()
        .name("exec-watchdog".into())
        .spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                let now = now_ms();
                for (i, stamp) in started.iter().enumerate() {
                    let v = stamp.load(Ordering::Acquire);
                    if v != 0 && v != FINISHED && now.saturating_sub(v - 1) >= deadline_ms {
                        tokens[i].cancel();
                    }
                }
                thread::sleep(WATCHDOG_POLL);
            }
        })
        .expect("spawn exec watchdog");
    WatchdogGuard { stop, handle: Some(handle) }
}

/// The broadcast payload of one [`WorkerPool::map_watchdog`] (and, through
/// it, [`WorkerPool::map_quarantine`]) call. Like [`MapJob`], but a lane
/// losing its item — to a panic *or* to a watchdog-cancelled timeout — is
/// *quarantined*: the index is recorded and the lane moves on to the next
/// item instead of draining the cursor, so one poisoned or hung lane no
/// longer stalls the whole map.
struct WatchdogJob<'a, T, R, F> {
    items: &'a [T],
    slots: &'a [Mutex<Option<R>>],
    tokens: &'a [CancelToken],
    /// Heartbeats: 0 = not started, [`FINISHED`] = done, else
    /// `now_ms() + 1` at item start.
    started: &'a [AtomicU64],
    f: &'a F,
    next: AtomicUsize,
    tickets: AtomicUsize,
    cap: usize,
    /// Indices whose first attempt panicked; resubmitted by the caller.
    failed: Mutex<Vec<usize>>,
    /// Indices whose first attempt gave up after cancellation; resubmitted
    /// by the caller exactly like panics.
    timed_out: Mutex<Vec<usize>>,
}

impl<T, R, F> WatchdogJob<'_, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &CancelToken) -> Option<R> + Sync,
{
    fn run_items(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = self.items.get(i) else { break };
            self.started[i].store(now_ms() + 1, Ordering::Release);
            let r = catch_unwind(AssertUnwindSafe(|| (self.f)(item, &self.tokens[i])));
            self.started[i].store(FINISHED, Ordering::Release);
            match r {
                Ok(Some(r)) => *lock(&self.slots[i]) = Some(r),
                Ok(None) => lock(&self.timed_out).push(i),
                Err(_) => lock(&self.failed).push(i),
            }
        }
    }
}

impl<T, R, F> RunJob for WatchdogJob<'_, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &CancelToken) -> Option<R> + Sync,
{
    fn run_worker(&self) {
        if self.tickets.fetch_add(1, Ordering::Relaxed) + 1 >= self.cap {
            return;
        }
        self.run_items();
    }
}

/// What one [`WorkerPool::map_watchdog`] call had to do beyond a clean map.
#[derive(Debug, Clone, Default)]
pub struct WatchdogReport {
    /// Indices resubmitted serially after the parallel pass (first attempt
    /// panicked or timed out), in the deterministic (sorted) retry order.
    pub retried: Vec<usize>,
    /// Timeout give-ups observed across both passes (a retried item that
    /// times out again counts twice).
    pub timeout_events: usize,
    /// Indices still without a result after their retry (`out[i] == None`).
    pub timed_out: Vec<usize>,
}

/// The payload of one [`WorkerPool::broadcast`] call: every pool thread
/// runs `f` exactly once (the per-generation dispatch in `worker_loop`
/// already guarantees at-most-once per worker; the `done` count lets the
/// submitter wait for at-least-once).
struct BroadcastJob<'a, F> {
    f: &'a F,
    /// Workers that have completed their single run of `f`.
    done: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<F> RunJob for BroadcastJob<'_, F>
where
    F: Fn() + Sync,
{
    fn run_worker(&self) {
        let r = catch_unwind(AssertUnwindSafe(self.f));
        self.done.fetch_add(1, Ordering::Release);
        if let Err(p) = r {
            let mut first = lock(&self.panic);
            if first.is_none() {
                *first = Some(p);
            }
        }
    }
}

/// The broadcast payload of one `map` call: items, pre-indexed result
/// slots, a shared cursor for dynamic load balancing, and the first
/// captured panic.
struct MapJob<'a, T, R, F> {
    items: &'a [T],
    slots: &'a [Mutex<Option<R>>],
    f: &'a F,
    next: AtomicUsize,
    /// Worker-participation tickets; workers beyond `cap - 1` (the
    /// submitter is the cap-th lane) return immediately.
    tickets: AtomicUsize,
    cap: usize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<T, R, F> MapJob<'_, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    fn run_items(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = self.items.get(i) else { break };
            match catch_unwind(AssertUnwindSafe(|| (self.f)(item))) {
                Ok(r) => *lock(&self.slots[i]) = Some(r),
                Err(p) => {
                    let mut first = lock(&self.panic);
                    if first.is_none() {
                        *first = Some(p);
                    }
                    // Drain remaining items so all lanes stop promptly.
                    self.next.store(self.items.len(), Ordering::Relaxed);
                    break;
                }
            }
        }
    }
}

impl<T, R, F> RunJob for MapJob<'_, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    fn run_worker(&self) {
        if self.tickets.fetch_add(1, Ordering::Relaxed) + 1 >= self.cap {
            return;
        }
        self.run_items();
    }
}

impl WorkerPool {
    /// A pool with parallelism degree `threads` (at least 1): `threads - 1`
    /// worker threads are spawned now and live until the pool drops.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState { job: None, generation: 0, running: 0, shutdown: false }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("exec-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, submit: Mutex::new(()), threads, handles }
    }

    /// The pool's parallelism degree (including the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item on up to [`WorkerPool::threads`] lanes.
    /// Results preserve item order and are bit-identical at any thread
    /// count (for a deterministic `f`).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_capped(items, usize::MAX, f)
    }

    /// Like [`WorkerPool::map`], but uses at most `cap` lanes — the knob
    /// call sites with their own historical `threads` parameter plumb
    /// through.
    ///
    /// Runs inline (serially, on the calling thread) when the pool or cap
    /// is 1, when there is at most one item, or when called from inside a
    /// pool worker — the outer parallel level keeps the budget.
    ///
    /// # Panics
    ///
    /// If `f` panics on any item, the first captured panic is resumed on
    /// the calling thread after all lanes quiesce.
    pub fn map_capped<T, R, F>(&self, items: &[T], cap: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let cap = cap.clamp(1, self.threads);
        if cap == 1 || items.len() <= 1 || in_worker() {
            return items.iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let job = MapJob {
            items,
            slots: &slots,
            f: &f,
            next: AtomicUsize::new(0),
            tickets: AtomicUsize::new(0),
            cap,
            panic: Mutex::new(None),
        };
        let submit = lock(&self.submit);
        {
            let erased: *const (dyn RunJob + '_) = &job;
            // SAFETY (lifetime erasure): `job` outlives every worker access
            // — the quiesce block below retracts the handle and waits for
            // `running == 0` before `job` can drop, and the submit lock
            // keeps other submitters from publishing over it.
            #[allow(clippy::missing_transmute_annotations)]
            let handle = JobHandle(unsafe { std::mem::transmute(erased) });
            let mut st = lock(&self.shared.state);
            st.job = Some(handle);
            st.generation += 1;
            self.shared.work_cv.notify_all();
        }
        // The submitting thread is one of the lanes. While it runs items it
        // counts as in-pool, so an `f` that itself maps (grid run → session
        // → oracle, all on the global pool) inlines instead of re-entering
        // `submit` on its own thread — which would self-deadlock.
        let was_worker = IN_WORKER.with(|w| w.replace(true));
        let mine = catch_unwind(AssertUnwindSafe(|| job.run_items()));
        IN_WORKER.with(|w| w.set(was_worker));
        // Quiesce: retract the job and wait until no worker can still hold
        // a reference into this stack frame.
        {
            let mut st = lock(&self.shared.state);
            st.job = None;
            while st.running > 0 {
                st = wait(&self.shared.done_cv, st);
            }
        }
        drop(submit);
        if let Err(p) = mine {
            resume_unwind(p);
        }
        if let Some(p) = lock(&job.panic).take() {
            resume_unwind(p);
        }
        drop(job);
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every item mapped")
            })
            .collect()
    }

    /// Runs `f` once on **every** pool thread — the `threads - 1` workers
    /// and the calling thread. Unlike [`WorkerPool::map`], which hands
    /// items to whichever lanes show up, `broadcast` waits until every
    /// worker has executed `f`, so per-thread state seeded through
    /// [`with_arena`] is guaranteed to exist on all lanes afterwards.
    /// This is how snapshot hydration pre-warms every lane's fork arena.
    ///
    /// Runs `f` once inline when the pool has no workers or when called
    /// from inside a pool worker (the outer parallel level owns the lanes).
    ///
    /// # Panics
    ///
    /// If `f` panics on any thread, the first captured panic is resumed on
    /// the calling thread after all lanes quiesce.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn() + Sync,
    {
        if self.handles.is_empty() || in_worker() {
            f();
            return;
        }
        let job = BroadcastJob { f: &f, done: AtomicUsize::new(0), panic: Mutex::new(None) };
        let submit = lock(&self.submit);
        {
            let erased: *const (dyn RunJob + '_) = &job;
            // SAFETY (lifetime erasure): identical to `map_capped` — the
            // quiesce block below retracts the handle only after every
            // worker has finished with the job, and the submit lock keeps
            // other submitters from publishing over it.
            #[allow(clippy::missing_transmute_annotations)]
            let handle = JobHandle(unsafe { std::mem::transmute(erased) });
            let mut st = lock(&self.shared.state);
            st.job = Some(handle);
            st.generation += 1;
            self.shared.work_cv.notify_all();
        }
        // The submitting thread is itself a lane: run `f` here too.
        let was_worker = IN_WORKER.with(|w| w.replace(true));
        let mine = catch_unwind(AssertUnwindSafe(&f));
        IN_WORKER.with(|w| w.set(was_worker));
        // Wait until every worker has run the job (not merely until the
        // running count drains — a worker that hasn't woken yet must still
        // get its turn), then retract it.
        {
            let mut st = lock(&self.shared.state);
            while job.done.load(Ordering::Acquire) < self.handles.len() || st.running > 0 {
                st = wait(&self.shared.done_cv, st);
            }
            st.job = None;
        }
        drop(submit);
        if let Err(p) = mine {
            resume_unwind(p);
        }
        let worker_panic = lock(&job.panic).take();
        drop(job);
        if let Some(p) = worker_panic {
            resume_unwind(p);
        }
    }

    /// Like [`WorkerPool::map_capped`], but an item whose `f` panics is
    /// **quarantined and resubmitted** instead of aborting the map: the
    /// surviving lanes keep draining the remaining items, and after the
    /// pool quiesces every failed item is retried once, serially, on the
    /// calling thread. Returns the in-order results plus the number of
    /// items that needed resubmission. For a deterministic `f` whose
    /// retries succeed, the results are bit-identical to a panic-free
    /// [`WorkerPool::map_capped`] at any thread count.
    ///
    /// Implemented on [`WorkerPool::map_watchdog`] with no deadline, so
    /// panic quarantine and timeout quarantine share one deterministic
    /// resubmission path.
    ///
    /// # Panics
    ///
    /// Only if an item panics on its *second* attempt too — a persistent
    /// fault, not a transient lane loss.
    pub fn map_quarantine<T, R, F>(&self, items: &[T], cap: usize, f: F) -> (Vec<R>, usize)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let (out, report) = self.map_watchdog(items, cap, None, |item, _token| Some(f(item)));
        let out = out
            .into_iter()
            .map(|r| r.expect("no deadline, so every item completed or was resubmitted"))
            .collect();
        (out, report.retried.len())
    }

    /// Like [`WorkerPool::map_quarantine`], but with wall-clock supervision:
    /// each item gets a [`CancelToken`], and a watchdog thread cancels any
    /// item still in flight `deadline` after its lane picked it up. An item
    /// returns `Some(r)` on success or `None` to give up (typically after
    /// observing cancellation); lanes that lose their item — to a panic or
    /// a timeout — are recovered exactly like the panic-quarantine path,
    /// and the lost items are resubmitted once, serially, on the calling
    /// thread in sorted (deterministic) order with fresh tokens. Output
    /// slot `i` is `None` only if item `i` produced `None` on both
    /// attempts; for a deterministic `f`, the `Some` set is bit-identical
    /// across thread counts.
    ///
    /// With `deadline: None` no watchdog runs and tokens are never
    /// cancelled (pure panic quarantine).
    ///
    /// # Panics
    ///
    /// Only if an item panics on its second (serial) attempt.
    pub fn map_watchdog<T, R, F>(
        &self,
        items: &[T],
        cap: usize,
        deadline: Option<Duration>,
        f: F,
    ) -> (Vec<Option<R>>, WatchdogReport)
    where
        T: Sync,
        R: Send,
        F: Fn(&T, &CancelToken) -> Option<R> + Sync,
    {
        let cap = cap.clamp(1, self.threads);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let tokens: Arc<Vec<CancelToken>> =
            Arc::new(items.iter().map(|_| CancelToken::new()).collect());
        let started: Arc<Vec<AtomicU64>> =
            Arc::new(items.iter().map(|_| AtomicU64::new(0)).collect());
        // The guard joins the poller on every exit path, including unwinds.
        let _watchdog = deadline.map(|d| spawn_watchdog(&tokens, &started, d));
        let job = WatchdogJob {
            items,
            slots: &slots,
            tokens: &tokens,
            started: &started,
            f: &f,
            next: AtomicUsize::new(0),
            tickets: AtomicUsize::new(0),
            cap,
            failed: Mutex::new(Vec::new()),
            timed_out: Mutex::new(Vec::new()),
        };
        // Serial shapes (cap 1, ≤1 item, nested-in-worker) skip the
        // broadcast but run the same job code, so quarantine and watchdog
        // semantics are identical either way.
        let parallel = cap > 1 && items.len() > 1 && !in_worker();
        let submit = if parallel {
            let submit = lock(&self.submit);
            {
                let erased: *const (dyn RunJob + '_) = &job;
                // SAFETY (lifetime erasure): identical to `map_capped` — the
                // quiesce block below retracts the handle and waits for
                // `running == 0` before `job` can drop.
                #[allow(clippy::missing_transmute_annotations)]
                let handle = JobHandle(unsafe { std::mem::transmute(erased) });
                let mut st = lock(&self.shared.state);
                st.job = Some(handle);
                st.generation += 1;
                self.shared.work_cv.notify_all();
            }
            Some(submit)
        } else {
            None
        };
        let was_worker = IN_WORKER.with(|w| w.replace(true));
        let mine = catch_unwind(AssertUnwindSafe(|| job.run_items()));
        IN_WORKER.with(|w| w.set(was_worker));
        if parallel {
            let mut st = lock(&self.shared.state);
            st.job = None;
            while st.running > 0 {
                st = wait(&self.shared.done_cv, st);
            }
        }
        drop(submit);
        if let Err(p) = mine {
            resume_unwind(p);
        }
        // Resubmit lost items — panicked and timed-out alike — serially;
        // sorted so the retry order (and any second-attempt panic) is
        // deterministic regardless of which lanes lost them.
        let mut retried = lock(&job.failed).split_off(0);
        let first_timeouts = {
            let t = lock(&job.timed_out);
            retried.extend(t.iter().copied());
            t.len()
        };
        retried.sort_unstable();
        let mut timeout_events = first_timeouts;
        let mut timed_out = Vec::new();
        for &i in &retried {
            // Unstamp before resetting the token so the watchdog cannot
            // cancel the fresh attempt based on the stale first-attempt
            // stamp.
            started[i].store(0, Ordering::Release);
            tokens[i].reset();
            started[i].store(now_ms() + 1, Ordering::Release);
            let r = f(&items[i], &tokens[i]);
            started[i].store(FINISHED, Ordering::Release);
            match r {
                Some(r) => *lock(&slots[i]) = Some(r),
                None => {
                    timeout_events += 1;
                    timed_out.push(i);
                }
            }
        }
        drop(job);
        let out = slots
            .into_iter()
            .map(|s| s.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
            .collect();
        (out, WatchdogReport { retried, timeout_events, timed_out })
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Thread-count override recorded by [`set_global_threads`] before the
/// global pool first initializes (0 = no override).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);
static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();

/// The process-wide pool shared by the oracle, the suite grid and the CLI.
/// First use spawns it with [`set_global_threads`]'s override if one was
/// recorded, else [`default_threads`].
pub fn global_pool() -> Arc<WorkerPool> {
    Arc::clone(GLOBAL.get_or_init(|| {
        let n = match GLOBAL_THREADS.load(Ordering::Relaxed) {
            0 => default_threads(),
            n => n,
        };
        Arc::new(WorkerPool::new(n))
    }))
}

/// Sets the parallelism degree the global pool will use (the `--threads`
/// CLI flag). Returns `false` if the global pool already initialized, in
/// which case the override has no effect.
pub fn set_global_threads(n: usize) -> bool {
    GLOBAL_THREADS.store(n.max(1), Ordering::Relaxed);
    GLOBAL.get().is_none()
}

/// Default parallelism degree: the `PCSTALL_THREADS` environment variable
/// when set to a positive integer, else physical parallelism capped at 8
/// (each lane may hold a whole forked GPU; memory stays modest).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PCSTALL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map(&items, |&i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_identical_across_thread_counts_and_caps() {
        let items: Vec<u64> = (0..57).collect();
        let f = |&i: &u64| i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        let serial: Vec<u64> = items.iter().map(f).collect();
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.map(&items, f), serial, "threads={threads}");
            for cap in [1, 2, usize::MAX] {
                assert_eq!(pool.map_capped(&items, cap, f), serial, "threads={threads} cap={cap}");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_maps() {
        let pool = WorkerPool::new(3);
        for round in 0..50usize {
            let items: Vec<usize> = (0..round + 1).collect();
            let out = pool.map(&items, |&i| i + round);
            assert_eq!(out.len(), round + 1);
            assert_eq!(out[round], 2 * round);
        }
    }

    #[test]
    fn nested_map_on_same_pool_runs_inline_without_deadlock() {
        // Every lane — worker or submitter — counts as in-pool while it
        // runs items, so a nested map on the *same* pool must inline (a
        // submitter re-entering `submit` on its own thread would
        // self-deadlock; a worker can never pick up a second broadcast).
        let pool = WorkerPool::new(2);
        let outer: Vec<usize> = (0..8).collect();
        let out = pool.map(&outer, |&i| {
            let inner: Vec<usize> = (0..5).collect();
            pool.map(&inner, |&j| j * 10).iter().sum::<usize>() + i
        });
        assert_eq!(out, (0..8).map(|i| 100 + i).collect::<Vec<_>>());
    }

    #[test]
    fn arena_reuses_value_per_thread() {
        // Serial thread: the second call must see the first call's state.
        struct Counter(usize);
        let a = with_arena(
            || Counter(0),
            |c| {
                c.0 += 1;
                c.0
            },
        );
        let b = with_arena(
            || Counter(0),
            |c| {
                c.0 += 1;
                c.0
            },
        );
        assert_eq!((a, b), (1, 2), "arena must persist across calls on one thread");
    }

    #[test]
    fn arena_nesting_checks_out_independent_values() {
        struct Buf(Vec<u8>);
        let n = with_arena(
            || Buf(vec![1]),
            |outer| {
                outer.0.push(2);
                // Same type, nested: must get a fresh instance, not a
                // second &mut to `outer`.
                with_arena(|| Buf(vec![9]), |inner| inner.0.len()) + outer.0.len()
            },
        );
        assert_eq!(n, 3);
    }

    #[test]
    fn worker_arena_survives_across_jobs() {
        // Pin all real work to one worker (cap small, submitter busy) is
        // hard to force; instead verify the weaker, sufficient property:
        // total arena constructions are bounded by the number of distinct
        // threads, not the number of items.
        static INITS: AtomicUsize = AtomicUsize::new(0);
        struct Scratch;
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..200).collect();
        for _ in 0..3 {
            let _ = pool.map(&items, |&i| {
                with_arena(
                    || {
                        INITS.fetch_add(1, Ordering::Relaxed);
                        Scratch
                    },
                    |_s| i,
                )
            });
        }
        assert!(
            INITS.load(Ordering::Relaxed) <= 4,
            "arena re-initialized per item: {} constructions",
            INITS.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn panic_in_item_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..40).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |&i| {
                if i == 17 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        assert!(caught.is_err(), "panic must propagate to the submitter");
        // The pool must remain usable after a panicked map.
        let ok = pool.map(&items, |&i| i + 1);
        assert_eq!(ok[39], 40);
    }

    #[test]
    fn quarantine_recovers_from_lane_panics() {
        // A set of first-attempt panics must not abort the map, must not
        // deadlock, and must leave results identical to a clean run.
        static ATTEMPTS: [AtomicUsize; 40] = [const { AtomicUsize::new(0) }; 40];
        let panicky = |&i: &usize| {
            if (i == 3 || i == 17 || i == 39) && ATTEMPTS[i].fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient fault on {i}");
            }
            i * 7
        };
        let items: Vec<usize> = (0..40).collect();
        let clean: Vec<usize> = items.iter().map(|&i| i * 7).collect();
        let pool = WorkerPool::new(4);
        let (out, resubmitted) = pool.map_quarantine(&items, usize::MAX, panicky);
        assert_eq!(out, clean);
        assert_eq!(resubmitted, 3);
        // The pool remains usable afterwards.
        assert_eq!(pool.map(&items, |&i| i + 1)[39], 40);
    }

    #[test]
    fn quarantine_serial_path_retries_once() {
        static ATTEMPTS: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(1);
        let items: Vec<usize> = (0..10).collect();
        let (out, resubmitted) = pool.map_quarantine(&items, 1, |&i| {
            if i == 5 && ATTEMPTS.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("once");
            }
            i
        });
        assert_eq!(out, items);
        assert_eq!(resubmitted, 1);
    }

    #[test]
    fn quarantine_matches_map_when_nothing_panics() {
        let items: Vec<u64> = (0..57).collect();
        let f = |&i: &u64| i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        let serial: Vec<u64> = items.iter().map(f).collect();
        for threads in [1, 2, 8] {
            let pool = WorkerPool::new(threads);
            let (out, resubmitted) = pool.map_quarantine(&items, usize::MAX, f);
            assert_eq!(out, serial, "threads={threads}");
            assert_eq!(resubmitted, 0);
        }
    }

    #[test]
    fn quarantine_propagates_persistent_faults() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..20).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map_quarantine(&items, usize::MAX, |&i| {
                if i == 11 {
                    panic!("hard fault");
                }
                i
            })
        }));
        assert!(caught.is_err(), "a second-attempt panic must still propagate");
        assert_eq!(pool.map(&items, |&i| i)[19], 19);
    }

    #[test]
    fn broadcast_runs_on_every_thread_exactly_once() {
        use std::collections::HashSet;
        let pool = WorkerPool::new(4);
        let ids = Mutex::new(HashSet::new());
        let runs = AtomicUsize::new(0);
        pool.broadcast(|| {
            runs.fetch_add(1, Ordering::Relaxed);
            ids.lock().unwrap().insert(thread::current().id());
        });
        assert_eq!(runs.load(Ordering::Relaxed), 4, "one run per lane");
        assert_eq!(ids.into_inner().unwrap().len(), 4, "each run on a distinct thread");
    }

    #[test]
    fn broadcast_seeds_arenas_for_subsequent_maps() {
        struct Seed(u64);
        let pool = WorkerPool::new(3);
        pool.broadcast(|| with_arena(|| Seed(42), |_| ()));
        // Every lane a later map can use was just seeded, so no map item
        // should ever construct a fresh arena.
        let fresh = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let out = pool.map(&items, |&i| {
            with_arena(
                || {
                    fresh.fetch_add(1, Ordering::Relaxed);
                    Seed(0)
                },
                |s| s.0 + i as u64,
            )
        });
        assert_eq!(fresh.load(Ordering::Relaxed), 0, "broadcast must have seeded every lane");
        assert_eq!(out[0], 42);
    }

    #[test]
    fn broadcast_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let caught = catch_unwind(AssertUnwindSafe(|| pool.broadcast(|| panic!("seed failure"))));
        assert!(caught.is_err(), "broadcast panic must reach the submitter");
        let items: Vec<usize> = (0..10).collect();
        assert_eq!(pool.map(&items, |&i| i * 2)[9], 18);
    }

    #[test]
    fn broadcast_single_thread_runs_inline() {
        let pool = WorkerPool::new(1);
        let runs = AtomicUsize::new(0);
        pool.broadcast(|| {
            runs.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        let n = default_threads();
        assert!(n >= 1);
        assert!(n <= 8 || std::env::var("PCSTALL_THREADS").is_ok());
    }

    #[test]
    fn empty_and_single_item_maps() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u32> = vec![];
        assert!(pool.map(&empty, |&x| x).is_empty());
        assert_eq!(pool.map(&[7u32], |&x| x * 2), vec![14]);
    }

    #[test]
    fn cancel_token_park_and_reset() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.park(Duration::from_millis(5)), "un-cancelled park times out");
        t.cancel();
        assert!(t.is_cancelled());
        assert!(t.park(Duration::from_secs(60)), "cancelled park returns immediately");
        t.reset();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn watchdog_recovers_hung_lane_via_resubmission() {
        // Item 3 hangs (parks on its token) on the first attempt only; the
        // watchdog must cancel it, the lane must survive, and the
        // deterministic resubmission must complete it.
        static ATTEMPTS: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..8).collect();
        let (out, report) =
            pool.map_watchdog(&items, usize::MAX, Some(Duration::from_millis(40)), |&i, token| {
                if i == 3 && ATTEMPTS.fetch_add(1, Ordering::Relaxed) == 0 {
                    // Simulated hang: blocks until the watchdog cancels it
                    // (the long cap is a test-failure backstop).
                    return if token.park(Duration::from_secs(30)) { None } else { Some(0) };
                }
                Some(i * 7)
            });
        let expect: Vec<Option<usize>> = (0..8).map(|i| Some(i * 7)).collect();
        assert_eq!(out, expect, "hung item recovered on retry");
        assert_eq!(report.retried, vec![3]);
        assert_eq!(report.timeout_events, 1);
        assert!(report.timed_out.is_empty());
        // The pool remains usable afterwards.
        assert_eq!(pool.map(&items, |&i| i + 1)[7], 8);
    }

    #[test]
    fn watchdog_reports_persistently_hung_item() {
        // An item that hangs on every attempt ends as `None`, with the
        // rest of the map bit-identical to a clean run — one wedged cell
        // costs its slot, never the grid.
        let pool = WorkerPool::new(3);
        let items: Vec<usize> = (0..6).collect();
        let (out, report) =
            pool.map_watchdog(&items, usize::MAX, Some(Duration::from_millis(30)), |&i, token| {
                if i == 2 {
                    token.park(Duration::from_secs(30));
                    return None;
                }
                Some(i + 100)
            });
        for (i, r) in out.iter().enumerate() {
            if i == 2 {
                assert_eq!(*r, None);
            } else {
                assert_eq!(*r, Some(i + 100));
            }
        }
        assert_eq!(report.retried, vec![2]);
        assert_eq!(report.timed_out, vec![2]);
        assert_eq!(report.timeout_events, 2, "both attempts timed out");
    }

    #[test]
    fn watchdog_survivors_identical_across_thread_counts() {
        let items: Vec<u64> = (0..31).collect();
        let f = |&i: &u64, token: &CancelToken| {
            if i == 11 {
                token.park(Duration::from_secs(30));
                return None;
            }
            Some(i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(13))
        };
        let mut reference: Option<Vec<Option<u64>>> = None;
        for threads in [1, 2, 8] {
            let pool = WorkerPool::new(threads);
            let (out, report) =
                pool.map_watchdog(&items, usize::MAX, Some(Duration::from_millis(25)), f);
            assert_eq!(report.timed_out, vec![11], "threads={threads}");
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "threads={threads}"),
            }
        }
    }

    #[test]
    fn watchdog_mixed_panic_and_timeout_resubmission_is_sorted() {
        // Panics and timeouts funnel into one deterministic retry order.
        static ATTEMPTS: [AtomicUsize; 12] = [const { AtomicUsize::new(0) }; 12];
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..12).collect();
        let (out, report) =
            pool.map_watchdog(&items, usize::MAX, Some(Duration::from_millis(40)), |&i, token| {
                let first = ATTEMPTS[i].fetch_add(1, Ordering::Relaxed) == 0;
                match i {
                    9 if first => panic!("transient panic"),
                    4 if first => {
                        token.park(Duration::from_secs(30));
                        None
                    }
                    _ => Some(i),
                }
            });
        assert_eq!(report.retried, vec![4, 9], "sorted union of panicked and timed out");
        assert_eq!(out, (0..12).map(Some).collect::<Vec<_>>());
    }

    #[test]
    fn map_quarantine_without_deadline_never_times_out() {
        // The quarantine wrapper must not inherit any watchdog behavior: a
        // slow-but-finite item completes untouched.
        let pool = WorkerPool::new(2);
        let items: Vec<usize> = (0..4).collect();
        let (out, resubmitted) = pool.map_quarantine(&items, usize::MAX, |&i| {
            if i == 1 {
                thread::sleep(Duration::from_millis(20));
            }
            i * 2
        });
        assert_eq!(out, vec![0, 2, 4, 6]);
        assert_eq!(resubmitted, 0);
    }
}
