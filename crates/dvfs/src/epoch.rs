//! Fixed-time DVFS epochs and the transition-latency model.

use gpu_sim::time::Femtos;
use serde::{Deserialize, Serialize};

/// Configuration of the fixed-time DVFS epoch.
///
/// The paper assumes V/f transition latencies that scale with the epoch
/// length — 4 ns at 1 µs epochs, 40 ns at 10 µs, 200 ns at 50 µs and 400 ns
/// at 100 µs — i.e. `latency = 4 ns × epoch_µs`, reflecting that slower
/// (coarser) DVFS deployments use slower regulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochConfig {
    /// Epoch duration.
    pub duration: Femtos,
    /// V/f transition (settling) latency applied when a domain changes
    /// frequency at an epoch boundary.
    pub transition: Femtos,
}

impl EpochConfig {
    /// Builds the paper's epoch model for a given duration in microseconds:
    /// transition latency is 4 ns per µs of epoch length.
    pub fn paper(epoch_us: u64) -> Self {
        assert!(epoch_us > 0, "epoch must be non-zero");
        EpochConfig {
            duration: Femtos::from_micros(epoch_us),
            transition: Femtos::from_nanos(4 * epoch_us),
        }
    }

    /// Builds an epoch with an explicit transition latency.
    pub fn with_transition(duration: Femtos, transition: Femtos) -> Self {
        EpochConfig { duration, transition }
    }

    /// Fraction of the epoch lost to one transition, in [0, 1].
    pub fn transition_fraction(&self) -> f64 {
        if self.duration == Femtos::ZERO {
            return 0.0;
        }
        (self.transition.as_fs() as f64 / self.duration.as_fs() as f64).min(1.0)
    }
}

impl Default for EpochConfig {
    /// The paper's headline fine-grain epoch: 1 µs with 4 ns transitions.
    fn default() -> Self {
        EpochConfig::paper(1)
    }
}

/// The epoch clock is part of a restored run's identity: a warmup snapshot
/// replayed under a different epoch length would silently desynchronize the
/// DVFS loop, so the duration/transition pair rides in the snapshot and is
/// validated on restore.
impl snapshot::Snapshot for EpochConfig {
    fn encode(&self, w: &mut snapshot::Encoder) {
        let EpochConfig { duration, transition } = *self;
        duration.encode(w);
        transition.encode(w);
    }
    fn decode(r: &mut snapshot::Decoder) -> Result<Self, snapshot::SnapError> {
        let duration = Femtos::decode(r)?;
        let transition = Femtos::decode(r)?;
        if duration == Femtos::ZERO {
            return Err(snapshot::SnapError::invalid("epoch duration must be non-zero"));
        }
        Ok(EpochConfig { duration, transition })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_transition_points() {
        assert_eq!(EpochConfig::paper(1).transition, Femtos::from_nanos(4));
        assert_eq!(EpochConfig::paper(10).transition, Femtos::from_nanos(40));
        assert_eq!(EpochConfig::paper(50).transition, Femtos::from_nanos(200));
        assert_eq!(EpochConfig::paper(100).transition, Femtos::from_nanos(400));
    }

    #[test]
    fn transition_fraction_constant_in_paper_model() {
        for us in [1, 10, 50, 100] {
            let e = EpochConfig::paper(us);
            assert!((e.transition_fraction() - 0.004).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_epoch_panics() {
        let _ = EpochConfig::paper(0);
    }
}
