//! Objective functions mapping a predicted performance curve to a V/f state.
//!
//! Prediction and frequency selection are deliberately separated (paper
//! Section 5.2): any predictor produces "instructions committed at each
//! candidate frequency", and the objective turns that curve plus the power
//! model into a state choice.

use crate::epoch::EpochConfig;
use crate::states::FreqStates;
use gpu_sim::time::Frequency;
use power::model::PowerModel;
use serde::{Deserialize, Serialize};

/// The DVFS optimization goal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize energy–delay product (battery-oriented).
    MinEdp,
    /// Minimize energy–delay² product (server/performance-oriented; the
    /// paper's headline objective).
    MinEd2p,
    /// Minimize energy subject to a relative performance-loss limit versus
    /// always running at the maximum state (paper Section 6.4; limits of
    /// 0.05 and 0.10 are evaluated).
    EnergyUnderPerfLoss(f64),
    /// Always run at a fixed frequency (static baseline).
    Static(Frequency),
}

/// Everything the objective needs besides the performance prediction.
#[derive(Debug, Clone, Copy)]
pub struct SelectionContext<'a> {
    /// Candidate states.
    pub states: &'a FreqStates,
    /// Epoch timing (for the transition penalty).
    pub epoch: EpochConfig,
    /// The power model.
    pub power: &'a PowerModel,
    /// CUs in the deciding domain.
    pub domain_cus: usize,
    /// Issue slots per CU cycle (for the activity estimate).
    pub issue_width: usize,
    /// Total CUs on the chip (for uncore power apportioning).
    pub total_cus: usize,
    /// The domain's current frequency (switching away incurs the
    /// transition penalty).
    pub current: Frequency,
}

impl Objective {
    /// Chooses the state minimizing this objective, given `predict(f)` =
    /// predicted instructions committed by the domain in the next epoch at
    /// frequency `f`.
    ///
    /// Ties resolve to the lower frequency. A prediction of zero work at
    /// every state returns the lowest state (nothing to run ⇒ save power).
    pub fn choose<F>(&self, ctx: &SelectionContext<'_>, predict: F) -> Frequency
    where
        F: Fn(Frequency) -> f64,
    {
        match *self {
            Objective::Static(f) => return ctx.states.nearest(f),
            Objective::EnergyUnderPerfLoss(limit) => {
                return self.choose_constrained(ctx, predict, limit)
            }
            _ => {}
        }
        let exponent = match *self {
            Objective::MinEdp => 2,
            Objective::MinEd2p => 3,
            _ => unreachable!("handled above"),
        };
        let mut best = ctx.states.min();
        let mut best_score = f64::INFINITY;
        let mut any_work = false;
        for f in ctx.states.iter() {
            let rate = effective_rate(ctx, &predict, f);
            if rate > 1e-9 {
                any_work = true;
            }
            let score = domain_power_w(ctx, f, rate) / rate.max(1e-9).powi(exponent);
            if score < best_score {
                best_score = score;
                best = f;
            }
        }
        if any_work {
            best
        } else {
            ctx.states.min()
        }
    }

    fn choose_constrained<F>(&self, ctx: &SelectionContext<'_>, predict: F, limit: f64) -> Frequency
    where
        F: Fn(Frequency) -> f64,
    {
        let reference = predict(ctx.states.max()).max(0.0);
        if reference <= 1e-9 {
            return ctx.states.min();
        }
        let floor = (1.0 - limit) * reference;
        let mut best: Option<(Frequency, f64)> = None;
        for f in ctx.states.iter() {
            let rate = effective_rate(ctx, &predict, f);
            if rate + 1e-9 < floor {
                continue;
            }
            let energy_per_work = domain_power_w(ctx, f, rate) / rate.max(1e-9);
            match best {
                Some((_, e)) if e <= energy_per_work => {}
                _ => best = Some((f, energy_per_work)),
            }
        }
        best.map(|(f, _)| f).unwrap_or_else(|| ctx.states.max())
    }
}

/// Predicted instructions for the epoch at `f`, discounted by the
/// transition stall if switching away from the current state.
fn effective_rate<F>(ctx: &SelectionContext<'_>, predict: &F, f: Frequency) -> f64
where
    F: Fn(Frequency) -> f64,
{
    let raw = predict(f).max(0.0);
    if f == ctx.current {
        raw
    } else {
        raw * (1.0 - ctx.epoch.transition_fraction())
    }
}

/// Estimated domain power at `f` given its predicted work `rate`
/// (instructions per epoch): per-CU dynamic power from the implied
/// instruction rate, plus each CU's share of the chip's uncore power.
fn domain_power_w(ctx: &SelectionContext<'_>, f: Frequency, rate: f64) -> f64 {
    let secs = ctx.epoch.duration.as_secs_f64().max(1e-12);
    let ips_per_cu = rate / secs / ctx.domain_cus.max(1) as f64;
    let per_cu = ctx.power.cu_power_w(f, ips_per_cu) + ctx.power.uncore_share_w(ctx.total_cus);
    per_cu * ctx.domain_cus as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::time::Femtos;

    fn ctx<'a>(states: &'a FreqStates, power: &'a PowerModel) -> SelectionContext<'a> {
        SelectionContext {
            states,
            epoch: EpochConfig::paper(1),
            power,
            domain_cus: 1,
            issue_width: 4,
            total_cus: 64,
            current: Frequency::from_mhz(1700),
        }
    }

    /// A linear performance curve I(f) = i0 + s * f_mhz.
    fn linear(i0: f64, s: f64) -> impl Fn(Frequency) -> f64 {
        move |f: Frequency| i0 + s * f.mhz() as f64
    }

    #[test]
    fn compute_bound_prefers_high_frequency_for_ed2p() {
        let states = FreqStates::paper();
        let power = PowerModel::default();
        let c = ctx(&states, &power);
        // Fully frequency-proportional work: I = 1.0/MHz.
        let f = Objective::MinEd2p.choose(&c, linear(0.0, 1.0));
        assert!(f.mhz() >= 2000, "compute-bound should clock high, got {f}");
    }

    #[test]
    fn memory_bound_prefers_low_frequency() {
        let states = FreqStates::paper();
        let power = PowerModel::default();
        let c = ctx(&states, &power);
        // Frequency-insensitive work.
        let f = Objective::MinEd2p.choose(&c, linear(1500.0, 0.0));
        assert_eq!(f, states.min(), "memory-bound should clock low");
    }

    #[test]
    fn edp_clocks_at_or_below_ed2p() {
        let states = FreqStates::paper();
        let power = PowerModel::default();
        let c = ctx(&states, &power);
        for s in [0.2, 0.5, 0.8, 1.0] {
            let pred = linear(500.0, s);
            let f_edp = Objective::MinEdp.choose(&c, &pred);
            let f_ed2p = Objective::MinEd2p.choose(&c, &pred);
            assert!(
                f_edp.mhz() <= f_ed2p.mhz(),
                "EDP weighs energy more -> lower clock (s={s}: {f_edp} vs {f_ed2p})"
            );
        }
    }

    #[test]
    fn static_objective_ignores_prediction() {
        let states = FreqStates::paper();
        let power = PowerModel::default();
        let c = ctx(&states, &power);
        let f = Objective::Static(Frequency::from_mhz(1700)).choose(&c, linear(0.0, 10.0));
        assert_eq!(f.mhz(), 1700);
    }

    #[test]
    fn perf_constraint_binds() {
        let states = FreqStates::paper();
        let power = PowerModel::default();
        let c = ctx(&states, &power);
        // Mildly sensitive work: dropping frequency loses some performance.
        let pred = linear(1000.0, 0.5);
        let tight = Objective::EnergyUnderPerfLoss(0.02).choose(&c, &pred);
        let loose = Objective::EnergyUnderPerfLoss(0.20).choose(&c, &pred);
        assert!(loose.mhz() <= tight.mhz(), "looser limit allows lower clock ({loose} vs {tight})");
        // Verify the tight choice actually satisfies the bound.
        let ref_rate = pred(states.max());
        let chosen_rate = pred(tight) * (1.0 - c.epoch.transition_fraction());
        assert!(chosen_rate >= 0.97 * ref_rate * (1.0 - 0.02) - 1e-9);
    }

    #[test]
    fn transition_penalty_creates_hysteresis() {
        let states = FreqStates::paper();
        let power = PowerModel::default();
        // Large transition cost: 20% of the epoch.
        let mut c = ctx(&states, &power);
        c.epoch = EpochConfig::with_transition(Femtos::from_micros(1), Femtos::from_nanos(200));
        c.current = Frequency::from_mhz(1800);
        // A curve whose unconstrained optimum is 1700: with a 20% switch
        // penalty, staying at 1800 can win.
        let pred = linear(800.0, 0.35);
        let chosen = c.current;
        let got = Objective::MinEd2p.choose(&c, &pred);
        // Either it stays (hysteresis) or the optimum is strong enough to
        // move; both are acceptable, but it must never pay the penalty for a
        // negligible gain. Compare scores directly:
        let frac = c.epoch.transition_fraction();
        let score = |f: Frequency| {
            let r = if f == chosen { pred(f) } else { pred(f) * (1.0 - frac) };
            let ips = r / c.epoch.duration.as_secs_f64();
            (power.cu_power_w(f, ips) + power.uncore_share_w(64)) / r.powi(3)
        };
        assert!(score(got) <= score(chosen) + 1e-18);
    }

    #[test]
    fn zero_work_clocks_down() {
        let states = FreqStates::paper();
        let power = PowerModel::default();
        let c = ctx(&states, &power);
        assert_eq!(Objective::MinEd2p.choose(&c, linear(0.0, 0.0)), states.min());
        assert_eq!(Objective::EnergyUnderPerfLoss(0.05).choose(&c, linear(0.0, 0.0)), states.min());
    }
}
