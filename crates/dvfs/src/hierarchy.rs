//! Hierarchical power management (paper Section 5.4).
//!
//! The paper's hardware DVFS controller operates *inside* a commercial
//! hierarchical power-management scheme: a higher-level policy sets power
//! objectives at millisecond scales, "which then impact the internal
//! frequency range used by the hardware DVFS controller". This module
//! implements that higher level: a chip-wide power-cap manager that
//! periodically compares average power against a budget and widens or
//! narrows the V/f state range the fine-grain controller may use.

use crate::states::FreqStates;
use gpu_sim::time::Femtos;
use serde::{Deserialize, Serialize};

/// Configuration of the chip-level power-cap manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCapConfig {
    /// Average-power budget in watts.
    pub budget_w: f64,
    /// Management interval (the paper's "millisecond scales"; scaled to
    /// simulation lengths here).
    pub interval: Femtos,
    /// Minimum number of states that must remain available to the
    /// fine-grain controller.
    pub min_states: usize,
    /// Hysteresis: the range is widened again only when average power
    /// falls below `budget_w * widen_below`.
    pub widen_below: f64,
}

impl PowerCapConfig {
    /// A manager enforcing `budget_w` with a 50 µs interval.
    pub fn new(budget_w: f64) -> Self {
        PowerCapConfig {
            budget_w,
            interval: Femtos::from_micros(50),
            min_states: 3,
            widen_below: 0.92,
        }
    }
}

/// What the manager did at an interval boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapAction {
    /// No interval boundary crossed or no change needed.
    None,
    /// Over budget: the highest allowed state was lowered.
    Narrowed,
    /// Comfortably under budget: the range was widened.
    Widened,
}

/// The chip-level power-cap manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCapManager {
    cfg: PowerCapConfig,
    full: FreqStates,
    /// Index of the highest currently allowed state.
    hi: usize,
    window_energy_j: f64,
    window_time: Femtos,
    narrowings: u64,
    widenings: u64,
}

impl PowerCapManager {
    /// Creates a manager over the full state set, initially unconstrained.
    ///
    /// # Panics
    ///
    /// Panics if `min_states` exceeds the state count or is zero.
    pub fn new(cfg: PowerCapConfig, states: FreqStates) -> Self {
        assert!(cfg.min_states >= 1, "need at least one allowed state");
        assert!(cfg.min_states <= states.len(), "min_states exceeds state count");
        let hi = states.len() - 1;
        PowerCapManager {
            cfg,
            full: states,
            hi,
            window_energy_j: 0.0,
            window_time: Femtos::ZERO,
            narrowings: 0,
            widenings: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PowerCapConfig {
        &self.cfg
    }

    /// The state range the fine-grain controller may currently use: the
    /// configured set with everything above the ceiling removed. Every
    /// returned state is a member of the full set, so index lookups
    /// against either set stay valid under any (possibly non-uniform)
    /// state grid.
    pub fn allowed(&self) -> FreqStates {
        self.full.prefix(self.hi + 1)
    }

    /// Index of the highest allowed state within the full set.
    pub fn ceiling_index(&self) -> usize {
        self.hi
    }

    /// Feeds one epoch's chip energy; at interval boundaries compares
    /// average power to the budget and adjusts the allowed range.
    pub fn record_epoch(&mut self, energy_j: f64, duration: Femtos) -> CapAction {
        self.window_energy_j += energy_j.max(0.0);
        self.window_time += duration;
        if self.window_time < self.cfg.interval {
            return CapAction::None;
        }
        let avg_w = self.window_energy_j / self.window_time.as_secs_f64();
        self.window_energy_j = 0.0;
        self.window_time = Femtos::ZERO;
        if avg_w > self.cfg.budget_w && self.hi + 1 > self.cfg.min_states {
            self.hi -= 1;
            self.narrowings += 1;
            CapAction::Narrowed
        } else if avg_w < self.cfg.budget_w * self.cfg.widen_below && self.hi + 1 < self.full.len()
        {
            self.hi += 1;
            self.widenings += 1;
            CapAction::Widened
        } else {
            CapAction::None
        }
    }

    /// How often the range was narrowed.
    pub fn narrowings(&self) -> u64 {
        self.narrowings
    }

    /// How often the range was widened.
    pub fn widenings(&self) -> u64 {
        self.widenings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(budget: f64) -> PowerCapManager {
        PowerCapManager::new(PowerCapConfig::new(budget), FreqStates::paper())
    }

    #[test]
    fn starts_unconstrained() {
        let m = manager(100.0);
        assert_eq!(m.allowed().len(), 10);
        assert_eq!(m.allowed().max().mhz(), 2200);
    }

    #[test]
    fn narrows_when_over_budget() {
        let mut m = manager(50.0);
        // 100 W average over one interval: 100 W * 50 us = 5 mJ.
        let action = m.record_epoch(5e-3, Femtos::from_micros(50));
        assert_eq!(action, CapAction::Narrowed);
        assert_eq!(m.allowed().max().mhz(), 2100);
    }

    #[test]
    fn widens_when_comfortably_under() {
        let mut m = manager(50.0);
        m.record_epoch(5e-3, Femtos::from_micros(50)); // narrow once
        let action = m.record_epoch(1e-3, Femtos::from_micros(50)); // 20 W
        assert_eq!(action, CapAction::Widened);
        assert_eq!(m.allowed().max().mhz(), 2200);
    }

    #[test]
    fn respects_minimum_state_count() {
        let mut m = manager(1.0);
        for _ in 0..50 {
            m.record_epoch(1.0, Femtos::from_micros(50)); // way over budget
        }
        assert_eq!(m.allowed().len(), m.config().min_states);
        assert_eq!(m.allowed().min().mhz(), 1300);
    }

    #[test]
    fn allowed_stays_on_grid_for_custom_state_sets() {
        use gpu_sim::time::Frequency;
        let states = FreqStates::from_states(vec![
            Frequency::from_mhz(1000),
            Frequency::from_mhz(1150),
            Frequency::from_mhz(1333),
            Frequency::from_mhz(1633),
        ]);
        let mut m = PowerCapManager::new(PowerCapConfig::new(1.0), states.clone());
        m.record_epoch(1.0, Femtos::from_micros(50)); // narrow once
        let allowed = m.allowed();
        assert_eq!(allowed.len(), 3);
        for f in allowed.iter() {
            assert!(states.index_of(f).is_some(), "{} MHz off-grid", f.mhz());
        }
    }

    #[test]
    fn sub_interval_epochs_accumulate() {
        let mut m = manager(50.0);
        for _ in 0..49 {
            assert_eq!(m.record_epoch(1e-4, Femtos::from_micros(1)), CapAction::None);
        }
        // The 50th microsecond closes the window: 100 W average.
        assert_eq!(m.record_epoch(1e-4, Femtos::from_micros(1)), CapAction::Narrowed);
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut m = manager(50.0);
        m.record_epoch(5e-3, Femtos::from_micros(50)); // narrow (100 W)
                                                       // 49 W: under budget but inside the hysteresis band -> no widen.
        assert_eq!(m.record_epoch(2.45e-3, Femtos::from_micros(50)), CapAction::None);
    }
}
