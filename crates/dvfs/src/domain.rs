//! V/f domain partitioning of the GPU's compute units.

use serde::{Deserialize, Serialize};

/// A partition of CU ids into V/f domains.
///
/// The paper's headline configuration is one CU per domain; Section 6.5
/// studies coarser granularities (2–32 CUs per domain).
///
/// # Examples
///
/// ```
/// use dvfs::domain::DomainMap;
/// let m = DomainMap::grouped(8, 4);
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.cus(1), &[4, 5, 6, 7]);
/// assert_eq!(m.domain_of(5), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainMap {
    domains: Vec<Vec<usize>>,
    owner: Vec<usize>,
}

impl DomainMap {
    /// One domain per CU (the paper's fine-grain default).
    pub fn per_cu(n_cus: usize) -> Self {
        Self::grouped(n_cus, 1)
    }

    /// Contiguous groups of `group` CUs per domain. The final domain takes
    /// any remainder.
    ///
    /// # Panics
    ///
    /// Panics if `n_cus` or `group` is zero.
    pub fn grouped(n_cus: usize, group: usize) -> Self {
        assert!(n_cus > 0, "need at least one CU");
        assert!(group > 0, "group must be non-zero");
        let mut domains = Vec::new();
        let mut start = 0;
        while start < n_cus {
            let end = (start + group).min(n_cus);
            domains.push((start..end).collect());
            start = end;
        }
        let mut owner = vec![0; n_cus];
        for (d, cus) in domains.iter().enumerate() {
            for &c in cus {
                owner[c] = d;
            }
        }
        DomainMap { domains, owner }
    }

    /// One domain spanning the whole GPU (chip-wide DVFS baseline).
    pub fn single(n_cus: usize) -> Self {
        Self::grouped(n_cus, n_cus)
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether there are no domains (never true for valid maps).
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// The CU ids of domain `d`.
    pub fn cus(&self, d: usize) -> &[usize] {
        &self.domains[d]
    }

    /// The domain owning CU `cu`.
    pub fn domain_of(&self, cu: usize) -> usize {
        self.owner[cu]
    }

    /// Iterates over `(domain index, CU ids)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize])> + '_ {
        self.domains.iter().enumerate().map(|(i, v)| (i, v.as_slice()))
    }

    /// Total CU count.
    pub fn n_cus(&self) -> usize {
        self.owner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cu_partition() {
        let m = DomainMap::per_cu(4);
        assert_eq!(m.len(), 4);
        for i in 0..4 {
            assert_eq!(m.cus(i), &[i]);
            assert_eq!(m.domain_of(i), i);
        }
    }

    #[test]
    fn grouped_with_remainder() {
        let m = DomainMap::grouped(10, 4);
        assert_eq!(m.len(), 3);
        assert_eq!(m.cus(2), &[8, 9]);
        assert_eq!(m.domain_of(9), 2);
    }

    #[test]
    fn single_domain() {
        let m = DomainMap::single(64);
        assert_eq!(m.len(), 1);
        assert_eq!(m.cus(0).len(), 64);
    }

    #[test]
    fn every_cu_owned_exactly_once() {
        let m = DomainMap::grouped(64, 8);
        let mut seen = [false; 64];
        for (_, cus) in m.iter() {
            for &c in cus {
                assert!(!seen[c], "CU {c} in two domains");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "group")]
    fn zero_group_panics() {
        let _ = DomainMap::grouped(4, 0);
    }
}
