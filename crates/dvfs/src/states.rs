//! The discrete V/f state set.

use gpu_sim::time::Frequency;
use serde::{Deserialize, Serialize};

/// The set of selectable frequency states of a V/f domain.
///
/// The paper's domains support 10 states, 1.3–2.2 GHz at 100 MHz steps.
///
/// # Examples
///
/// ```
/// use dvfs::states::FreqStates;
/// let s = FreqStates::paper();
/// assert_eq!(s.len(), 10);
/// assert_eq!(s.min().mhz(), 1300);
/// assert_eq!(s.max().mhz(), 2200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreqStates {
    states: Vec<Frequency>,
}

impl FreqStates {
    /// Builds a state set from an inclusive MHz range and step.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or the step is zero.
    pub fn from_range(min_mhz: u32, max_mhz: u32, step_mhz: u32) -> Self {
        assert!(step_mhz > 0, "step must be non-zero");
        assert!(min_mhz <= max_mhz, "empty frequency range");
        let states =
            (min_mhz..=max_mhz).step_by(step_mhz as usize).map(Frequency::from_mhz).collect();
        FreqStates { states }
    }

    /// The paper's 10-state set: 1300–2200 MHz at 100 MHz steps.
    pub fn paper() -> Self {
        Self::from_range(1300, 2200, 100)
    }

    /// Builds a state set from an explicit list of states (not necessarily
    /// uniformly spaced).
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or not strictly ascending.
    pub fn from_states(states: Vec<Frequency>) -> Self {
        assert!(!states.is_empty(), "empty state set");
        assert!(
            states.windows(2).all(|w| w[0].mhz() < w[1].mhz()),
            "states must be strictly ascending"
        );
        FreqStates { states }
    }

    /// The sub-set holding the `n` lowest states of this set (the shape a
    /// power-cap ceiling produces).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the state count.
    pub fn prefix(&self, n: usize) -> Self {
        assert!(n >= 1, "prefix must keep at least one state");
        assert!(n <= self.states.len(), "prefix exceeds state count");
        FreqStates { states: self.states[..n].to_vec() }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the set is empty (never true for validly constructed sets).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Iterates over the states in ascending frequency order.
    pub fn iter(&self) -> impl Iterator<Item = Frequency> + '_ {
        self.states.iter().copied()
    }

    /// All states as a slice.
    pub fn as_slice(&self) -> &[Frequency] {
        &self.states
    }

    /// The lowest state.
    pub fn min(&self) -> Frequency {
        *self.states.first().expect("non-empty state set")
    }

    /// The highest state.
    pub fn max(&self) -> Frequency {
        *self.states.last().expect("non-empty state set")
    }

    /// Index of `freq` in the set, if present.
    pub fn index_of(&self, freq: Frequency) -> Option<usize> {
        self.states.iter().position(|&f| f == freq)
    }

    /// The state closest to `freq` (ties resolve downward).
    pub fn nearest(&self, freq: Frequency) -> Frequency {
        *self
            .states
            .iter()
            .min_by_key(|f| (f.mhz() as i64 - freq.mhz() as i64).abs())
            .expect("non-empty state set")
    }
}

impl Default for FreqStates {
    fn default() -> Self {
        Self::paper()
    }
}

/// Decoding re-applies [`FreqStates::from_states`]'s invariants (non-empty,
/// strictly ascending) as typed errors.
impl snapshot::Snapshot for FreqStates {
    fn encode(&self, w: &mut snapshot::Encoder) {
        let FreqStates { states } = self;
        states.encode(w);
    }
    fn decode(r: &mut snapshot::Decoder) -> Result<Self, snapshot::SnapError> {
        let states = Vec::<Frequency>::decode(r)?;
        if states.is_empty() {
            return Err(snapshot::SnapError::invalid("empty frequency state set"));
        }
        if !states.windows(2).all(|w| w[0].mhz() < w[1].mhz()) {
            return Err(snapshot::SnapError::invalid("frequency states not strictly ascending"));
        }
        Ok(FreqStates { states })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_contents() {
        let s = FreqStates::paper();
        let mhz: Vec<u32> = s.iter().map(|f| f.mhz()).collect();
        assert_eq!(mhz, vec![1300, 1400, 1500, 1600, 1700, 1800, 1900, 2000, 2100, 2200]);
    }

    #[test]
    fn index_and_nearest() {
        let s = FreqStates::paper();
        assert_eq!(s.index_of(Frequency::from_mhz(1700)), Some(4));
        assert_eq!(s.index_of(Frequency::from_mhz(1750)), None);
        assert_eq!(s.nearest(Frequency::from_mhz(1740)).mhz(), 1700);
        assert_eq!(s.nearest(Frequency::from_mhz(2500)).mhz(), 2200);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn zero_step_panics() {
        let _ = FreqStates::from_range(1000, 2000, 0);
    }

    #[test]
    fn explicit_states_and_prefix() {
        let s = FreqStates::from_states(vec![
            Frequency::from_mhz(1000),
            Frequency::from_mhz(1150),
            Frequency::from_mhz(1333),
        ]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max().mhz(), 1333);
        let p = s.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.max().mhz(), 1150);
        assert_eq!(p.min().mhz(), 1000);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_states_panic() {
        let _ = FreqStates::from_states(vec![Frequency::from_mhz(1500), Frequency::from_mhz(1400)]);
    }

    #[test]
    fn single_state_set() {
        let s = FreqStates::from_range(1700, 1700, 100);
        assert_eq!(s.len(), 1);
        assert_eq!(s.min(), s.max());
    }
}
