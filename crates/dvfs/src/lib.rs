//! # dvfs — V/f domains, epochs and objective functions
//!
//! The DVFS control plumbing of the PCSTALL reproduction:
//!
//! * [`states::FreqStates`] — the 10-state 1.3–2.2 GHz set.
//! * [`domain::DomainMap`] — partitioning CUs into V/f domains (per-CU in
//!   the paper's headline results; 2–32-CU groups in its scalability study).
//! * [`epoch::EpochConfig`] — fixed-time epochs with the paper's
//!   transition-latency scaling (4 ns per µs of epoch length).
//! * [`objective::Objective`] — EDP / ED²P / energy-under-performance-bound
//!   frequency selection from any predicted performance curve, kept
//!   deliberately separate from the prediction mechanism.
//! * [`hierarchy::PowerCapManager`] — the paper's Section 5.4 higher-level
//!   power manager, which adjusts the state range the fine-grain
//!   controller may use to meet a chip power budget.
//!
//! ```
//! use dvfs::prelude::*;
//! use power::model::PowerModel;
//!
//! let states = FreqStates::paper();
//! let power = PowerModel::default();
//! let ctx = SelectionContext {
//!     states: &states,
//!     epoch: EpochConfig::paper(1),
//!     power: &power,
//!     domain_cus: 1,
//!     issue_width: 4,
//!     total_cus: 64,
//!     current: states.min(),
//! };
//! // A memory-bound prediction selects the lowest state under ED²P.
//! let f = Objective::MinEd2p.choose(&ctx, |_| 1000.0);
//! assert_eq!(f, states.min());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod domain;
pub mod epoch;
pub mod hierarchy;
pub mod objective;
pub mod states;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::domain::DomainMap;
    pub use crate::epoch::EpochConfig;
    pub use crate::hierarchy::{CapAction, PowerCapConfig, PowerCapManager};
    pub use crate::objective::{Objective, SelectionContext};
    pub use crate::states::FreqStates;
}
