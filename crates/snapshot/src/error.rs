//! Typed decode/validation errors.

use std::error::Error;
use std::fmt;

/// Why a snapshot could not be decoded.
///
/// Every constructor of this type corresponds to a *rejection*: the codec
/// and container layers are total functions from bytes to
/// `Result<_, SnapError>` and never panic on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte string does not start with the snapshot magic.
    BadMagic,
    /// The container was written by an unsupported format version.
    Version {
        /// Version found in the header.
        found: u16,
        /// Newest version this build understands.
        supported: u16,
    },
    /// The input ended before the structure it promised.
    Truncated,
    /// A section's payload does not match its recorded CRC-32.
    Corrupt {
        /// Name of the failing section.
        section: String,
    },
    /// A section the decoder requires is absent from the container.
    MissingSection {
        /// Name of the absent section.
        section: String,
    },
    /// The bytes decoded structurally but describe an invalid state
    /// (zero frequency, mismatched geometry, out-of-range index, ...).
    Invalid(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::Version { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} unsupported (this build reads <= {supported})"
                )
            }
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::Corrupt { section } => {
                write!(f, "snapshot section `{section}` fails its checksum")
            }
            SnapError::MissingSection { section } => {
                write!(f, "snapshot is missing required section `{section}`")
            }
            SnapError::Invalid(why) => write!(f, "snapshot describes invalid state: {why}"),
        }
    }
}

impl Error for SnapError {}

impl SnapError {
    /// Shorthand for an [`SnapError::Invalid`] with formatted context.
    pub fn invalid(why: impl Into<String>) -> Self {
        SnapError::Invalid(why.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(SnapError, &str)> = vec![
            (SnapError::BadMagic, "magic"),
            (SnapError::Version { found: 9, supported: 1 }, "version 9"),
            (SnapError::Truncated, "truncated"),
            (SnapError::Corrupt { section: "cus".into() }, "`cus`"),
            (SnapError::MissingSection { section: "mem".into() }, "`mem`"),
            (SnapError::invalid("zero frequency"), "zero frequency"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e} missing {needle}");
        }
    }
}
