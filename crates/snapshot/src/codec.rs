//! Varint-packed binary encoding and the [`Snapshot`] trait.
//!
//! Integers are LEB128 varints (state is dominated by small counters and
//! femtosecond deltas that fit a few bytes); `f64` is written as its exact
//! IEEE-754 bit pattern so metric values round-trip bit-identically.
//! Decoding is bounds-checked everywhere: running off the end of the input
//! yields [`SnapError::Truncated`], structurally impossible values yield
//! [`SnapError::Invalid`] — never a panic and never an unbounded
//! allocation (collection lengths are validated against the bytes that
//! remain before reserving memory).

use crate::error::SnapError;

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a LEB128 varint.
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a `u32` as a varint.
    pub fn put_u32(&mut self, v: u32) {
        self.put_u64(v as u64);
    }

    /// Writes a `u16` as a varint.
    pub fn put_u16(&mut self, v: u16) {
        self.put_u64(v as u64);
    }

    /// Writes a `usize` as a varint.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a boolean as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes an `f64` as its exact little-endian IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix (section splicing and
    /// container-level tooling; pair with [`Decoder::take_raw`]).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked cursor over encoded bytes.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — catches encoder/decoder
    /// drift where a field was added on one side only.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::invalid(format!("{} trailing bytes after decode", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a LEB128 varint.
    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.take(1)?[0];
            let part = (byte & 0x7F) as u64;
            if shift == 63 && part > 1 {
                return Err(SnapError::invalid("varint overflows u64"));
            }
            v |= part << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(SnapError::invalid("varint longer than 10 bytes"))
    }

    /// Reads a varint, failing if it exceeds `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapError> {
        u32::try_from(self.take_u64()?).map_err(|_| SnapError::invalid("value exceeds u32"))
    }

    /// Reads a varint, failing if it exceeds `u16`.
    pub fn take_u16(&mut self) -> Result<u16, SnapError> {
        u16::try_from(self.take_u64()?).map_err(|_| SnapError::invalid("value exceeds u16"))
    }

    /// Reads a varint, failing if it exceeds `usize`.
    pub fn take_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.take_u64()?).map_err(|_| SnapError::invalid("value exceeds usize"))
    }

    /// Reads one raw byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean, rejecting anything but `0`/`1`.
    pub fn take_bool(&mut self) -> Result<bool, SnapError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::invalid(format!("bool byte {b}"))),
        }
    }

    /// Reads an `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, SnapError> {
        let bytes: [u8; 8] = self.take(8)?.try_into().expect("take returned 8 bytes");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.take_usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.take_bytes()?)
            .map_err(|_| SnapError::invalid("string is not UTF-8"))
    }

    /// Reads `n` raw bytes with no length prefix.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Reads a collection length, rejecting lengths that cannot possibly
    /// fit in the remaining input (each element costs >= 1 byte) so a
    /// corrupted length can't trigger a huge allocation.
    pub fn take_len(&mut self) -> Result<usize, SnapError> {
        let n = self.take_usize()?;
        if n > self.remaining() {
            return Err(SnapError::Truncated);
        }
        Ok(n)
    }
}

/// Bit-exact binary state capture.
///
/// Implementations are written by hand, field by field, in declaration
/// order, mirroring the simulator's manual `clone_from` chain: exhaustive
/// struct destructuring in `encode` turns "someone added a field" into a
/// compile error rather than a silently incomplete snapshot.
pub trait Snapshot: Sized {
    /// Appends this value's state to `w`.
    fn encode(&self, w: &mut Encoder);
    /// Reconstructs a value, validating as it goes.
    ///
    /// # Errors
    ///
    /// Any structural or semantic defect in the input yields a
    /// [`SnapError`]; decoding never panics.
    fn decode(r: &mut Decoder) -> Result<Self, SnapError>;
}

impl Snapshot for u8 {
    fn encode(&self, w: &mut Encoder) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Decoder) -> Result<Self, SnapError> {
        r.take_u8()
    }
}

impl Snapshot for u16 {
    fn encode(&self, w: &mut Encoder) {
        w.put_u16(*self);
    }
    fn decode(r: &mut Decoder) -> Result<Self, SnapError> {
        r.take_u16()
    }
}

impl Snapshot for u32 {
    fn encode(&self, w: &mut Encoder) {
        w.put_u32(*self);
    }
    fn decode(r: &mut Decoder) -> Result<Self, SnapError> {
        r.take_u32()
    }
}

impl Snapshot for u64 {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(*self);
    }
    fn decode(r: &mut Decoder) -> Result<Self, SnapError> {
        r.take_u64()
    }
}

impl Snapshot for usize {
    fn encode(&self, w: &mut Encoder) {
        w.put_usize(*self);
    }
    fn decode(r: &mut Decoder) -> Result<Self, SnapError> {
        r.take_usize()
    }
}

impl Snapshot for bool {
    fn encode(&self, w: &mut Encoder) {
        w.put_bool(*self);
    }
    fn decode(r: &mut Decoder) -> Result<Self, SnapError> {
        r.take_bool()
    }
}

impl Snapshot for f64 {
    fn encode(&self, w: &mut Encoder) {
        w.put_f64(*self);
    }
    fn decode(r: &mut Decoder) -> Result<Self, SnapError> {
        r.take_f64()
    }
}

impl Snapshot for String {
    fn encode(&self, w: &mut Encoder) {
        w.put_str(self);
    }
    fn decode(r: &mut Decoder) -> Result<Self, SnapError> {
        Ok(r.take_str()?.to_owned())
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn encode(&self, w: &mut Encoder) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Decoder) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(SnapError::invalid(format!("Option tag {b}"))),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn encode(&self, w: &mut Encoder) {
        w.put_usize(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Decoder) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn encode(&self, w: &mut Encoder) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Decoder) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snapshot + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Encoder::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        r.finish().unwrap();
    }

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            round_trip(v);
        }
        round_trip(u32::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(42u8);
        round_trip(65535u16);
        for v in [0.0f64, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, f64::INFINITY] {
            round_trip(v);
        }
        round_trip("hello snapshot".to_string());
        round_trip(Option::<u64>::None);
        round_trip(Some(99u64));
        round_trip(vec![1u64, 2, 3]);
        round_trip((7u32, "pair".to_string()));
    }

    #[test]
    fn nan_bits_preserved() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = Encoder::new();
        weird.encode(&mut w);
        let bytes = w.into_bytes();
        let back = f64::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncation_rejected() {
        let mut w = Encoder::new();
        vec![1u64; 16].encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Decoder::new(&bytes[..cut]);
            assert_eq!(Vec::<u64>::decode(&mut r), Err(SnapError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn huge_length_rejected_without_allocating() {
        let mut w = Encoder::new();
        w.put_usize(usize::MAX);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert_eq!(Vec::<u8>::decode(&mut r), Err(SnapError::Truncated));
    }

    #[test]
    fn overlong_varint_rejected() {
        let bytes = [0xFFu8; 11];
        let mut r = Decoder::new(&bytes);
        assert!(matches!(r.take_u64(), Err(SnapError::Invalid(_))));
    }

    #[test]
    fn varint_msb_overflow_rejected() {
        // 10-byte varint whose final byte carries more than the single
        // remaining bit of a u64.
        let bytes = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        let mut r = Decoder::new(&bytes);
        assert!(matches!(r.take_u64(), Err(SnapError::Invalid(_))));
    }

    #[test]
    fn bad_bool_and_tag_rejected() {
        let mut r = Decoder::new(&[2]);
        assert!(matches!(r.take_bool(), Err(SnapError::Invalid(_))));
        let mut r = Decoder::new(&[7]);
        assert!(matches!(Option::<u8>::decode(&mut r), Err(SnapError::Invalid(_))));
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut w = Encoder::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(String::decode(&mut r), Err(SnapError::Invalid(_))));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut r = Decoder::new(&[1, 2, 3]);
        r.take_u8().unwrap();
        assert!(matches!(r.finish(), Err(SnapError::Invalid(_))));
    }
}
