//! Content-addressed snapshot store: in-memory LRU over an on-disk cache.
//!
//! Keys are produced by [`content_key`] from whatever identifies the cached
//! state (application name, configuration, warmup depth, ...): change any
//! ingredient and the key changes, so stale cache entries are never
//! *invalidated* — they are simply never addressed again. Disk writes go
//! through a pluggable atomic-writer callback so embedders route them
//! through their own crash-safe I/O path (the harness wires its
//! `report::write_atomic` machinery here).

use std::collections::VecDeque;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File extension of on-disk snapshot cache entries.
pub const SNAP_EXT: &str = "snap";

/// Crash-safe file writer signature: write `bytes` to `path` such that a
/// crash leaves either the old file or the new one, never a torn mix.
pub type AtomicWriter = fn(&Path, &[u8]) -> io::Result<()>;

/// Disk reader signature, pluggable like [`AtomicWriter`] so embedders can
/// route reads through their own resilience layer (e.g. a
/// transient-error retry wrapper).
pub type DiskReader = fn(&Path) -> io::Result<Vec<u8>>;

/// Fallback atomic writer: temp file in the target directory + rename.
fn default_atomic_writer(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    let result = fs::write(&tmp, bytes).and_then(|()| fs::rename(&tmp, path));
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// 64-bit FNV-1a content key over an ordered list of identity parts.
///
/// Parts are length-delimited before hashing so `["ab", "c"]` and
/// `["a", "bc"]` produce different keys. The result is a 16-hex-digit
/// string usable directly as a cache file stem.
pub fn content_key(parts: &[&str]) -> String {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for p in parts {
        eat(&(p.len() as u64).to_le_bytes());
        eat(p.as_bytes());
    }
    format!("{h:016x}")
}

/// An in-memory LRU in front of an optional on-disk cache directory.
///
/// `get` promotes on both layers: a disk hit is pulled into memory, a
/// memory hit refreshes recency. `put` writes through to disk (when a
/// directory is configured) via the injected [`AtomicWriter`].
pub struct SnapshotStore {
    dir: Option<PathBuf>,
    writer: AtomicWriter,
    reader: DiskReader,
    capacity: usize,
    /// Most-recently-used entry at the back.
    entries: VecDeque<(String, Vec<u8>)>,
    hits: u64,
    misses: u64,
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("dir", &self.dir)
            .field("capacity", &self.capacity)
            .field("resident", &self.entries.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl SnapshotStore {
    /// A store backed by `dir` (created lazily on first write), keeping at
    /// most `capacity` entries resident in memory.
    pub fn new(dir: impl Into<PathBuf>, capacity: usize) -> Self {
        SnapshotStore {
            dir: Some(dir.into()),
            writer: default_atomic_writer,
            reader: |p| fs::read(p),
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// A purely in-memory store (tests, `--snapshot-dir` disabled).
    pub fn in_memory(capacity: usize) -> Self {
        SnapshotStore {
            dir: None,
            writer: default_atomic_writer,
            reader: |p| fs::read(p),
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Replaces the disk writer (e.g. with the harness's crash-safe
    /// `write_atomic`). Returns `self` for builder-style construction.
    pub fn with_writer(mut self, writer: AtomicWriter) -> Self {
        self.writer = writer;
        self
    }

    /// Replaces the disk reader (e.g. with a transient-error retry
    /// wrapper). Returns `self` for builder-style construction.
    pub fn with_reader(mut self, reader: DiskReader) -> Self {
        self.reader = reader;
        self
    }

    /// The on-disk path a key maps to, if a directory is configured.
    pub fn path_for(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key}.{SNAP_EXT}")))
    }

    /// The cache directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Looks up `key`, consulting memory then disk. Disk read errors are
    /// treated as misses: a half-written or deleted cache entry degrades
    /// to recomputation, never to a failure.
    pub fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        if let Some(i) = self.entries.iter().position(|(k, _)| k == key) {
            let entry = self.entries.remove(i).expect("position just found");
            let bytes = entry.1.clone();
            self.entries.push_back(entry);
            self.hits += 1;
            return Some(bytes);
        }
        if let Some(path) = self.path_for(key) {
            if let Ok(bytes) = (self.reader)(&path) {
                self.insert_resident(key.to_owned(), bytes.clone());
                self.hits += 1;
                return Some(bytes);
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts `key -> bytes`, writing through to disk when configured.
    ///
    /// # Errors
    ///
    /// Propagates the atomic writer's I/O error; the in-memory entry is
    /// installed regardless, so the caller still benefits this process.
    pub fn put(&mut self, key: &str, bytes: Vec<u8>) -> io::Result<()> {
        let disk = match self.path_for(key) {
            Some(path) => (self.writer)(&path, &bytes),
            None => Ok(()),
        };
        self.insert_resident(key.to_owned(), bytes);
        disk
    }

    fn insert_resident(&mut self, key: String, bytes: Vec<u8>) {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.push_back((key, bytes));
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
        }
    }

    /// Whether `key` is resident in memory or present on disk.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key) || self.path_for(key).is_some_and(|p| p.exists())
    }

    /// Keys of every on-disk cache entry, sorted (empty when no directory
    /// is configured or it does not exist yet).
    pub fn disk_keys(&self) -> Vec<String> {
        let Some(dir) = &self.dir else { return Vec::new() };
        let Ok(rd) = fs::read_dir(dir) else { return Vec::new() };
        let mut keys: Vec<String> = rd
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let p = e.path();
                (p.extension().and_then(|x| x.to_str()) == Some(SNAP_EXT))
                    .then(|| p.file_stem()?.to_str().map(str::to_owned))
                    .flatten()
            })
            .collect();
        keys.sort();
        keys
    }

    /// Entries currently resident in memory.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Memory+disk lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("snapstore-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn content_key_is_stable_and_delimited() {
        let k = content_key(&["app", "cfg", "40"]);
        assert_eq!(k, content_key(&["app", "cfg", "40"]));
        assert_eq!(k.len(), 16);
        assert_ne!(content_key(&["ab", "c"]), content_key(&["a", "bc"]));
        assert_ne!(k, content_key(&["app", "cfg", "41"]));
    }

    #[test]
    fn memory_round_trip_and_lru_eviction() {
        let mut s = SnapshotStore::in_memory(2);
        s.put("a", vec![1]).unwrap();
        s.put("b", vec![2]).unwrap();
        assert_eq!(s.get("a"), Some(vec![1])); // refreshes `a`
        s.put("c", vec![3]).unwrap(); // evicts `b`, the LRU entry
        assert_eq!(s.resident(), 2);
        assert_eq!(s.get("b"), None);
        assert_eq!(s.get("a"), Some(vec![1]));
        assert_eq!(s.get("c"), Some(vec![3]));
        assert_eq!(s.misses(), 1);
        assert_eq!(s.hits(), 3);
    }

    #[test]
    fn disk_write_through_and_reload() {
        let dir = tmp_dir("disk");
        let payload = vec![9u8; 128];
        {
            let mut s = SnapshotStore::new(&dir, 4);
            s.put("deadbeef00000000", payload.clone()).unwrap();
        }
        let mut fresh = SnapshotStore::new(&dir, 4);
        assert!(fresh.contains("deadbeef00000000"));
        assert_eq!(fresh.get("deadbeef00000000"), Some(payload));
        assert_eq!(fresh.resident(), 1, "disk hit should be promoted to memory");
        assert_eq!(fresh.disk_keys(), ["deadbeef00000000"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_degrades_to_miss() {
        let mut s = SnapshotStore::new(tmp_dir("never-created"), 4);
        assert_eq!(s.get("absent"), None);
        assert!(s.disk_keys().is_empty());
    }

    #[test]
    fn custom_writer_is_used() {
        fn failing(_: &Path, _: &[u8]) -> io::Result<()> {
            Err(io::Error::other("nope"))
        }
        let dir = tmp_dir("writer");
        let mut s = SnapshotStore::new(&dir, 4).with_writer(failing);
        assert!(s.put("k", vec![1]).is_err());
        // The in-memory layer still serves the entry.
        assert_eq!(s.get("k"), Some(vec![1]));
        let _ = fs::remove_dir_all(&dir);
    }
}
