//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! The container records one checksum per section so that a single flipped
//! bit anywhere in a snapshot is detected before any payload is decoded.
//! The reflected polynomial `0xEDB88320` matches zlib/PNG, making section
//! checksums easy to verify with external tooling.

/// Lookup table for the reflected IEEE polynomial, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (IEEE, reflected, init/xorout `0xFFFFFFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"snapshot payload");
        let mut flipped = b"snapshot payload".to_vec();
        flipped[5] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }
}
