//! The container format: magic, format version, named sections, per-section
//! CRC-32.
//!
//! Byte layout (all multi-byte header integers little-endian, fixed width —
//! the header must be parseable before trusting anything):
//!
//! ```text
//! +--------+---------+------------+----------------------------------+---------+
//! | "PCSN" | version | n_sections | table: (name_len u16, name,      | payload |
//! | 4 B    | u16     | u32        |         payload_len u64, crc u32)| bytes   |
//! +--------+---------+------------+----------------------------------+---------+
//! ```
//!
//! Payloads are concatenated after the table in table order. A reader
//! validates, in order: magic, version, header/table bounds, then each
//! section's CRC — so truncated input, foreign files, future formats and
//! bit flips each produce their own [`SnapError`] before any payload is
//! interpreted by a [`Snapshot`](crate::Snapshot) decoder.

use crate::codec::{Decoder, Encoder};
use crate::crc32::crc32;
use crate::error::SnapError;

/// First bytes of every snapshot file.
pub const MAGIC: [u8; 4] = *b"PCSN";

/// Newest container format version this build reads and writes.
///
/// Bump on any layout change; readers reject anything newer than what they
/// understand rather than misinterpreting it.
pub const FORMAT_VERSION: u16 = 1;

/// Builds a snapshot container section by section.
#[derive(Debug, Default)]
pub struct ContainerWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl ContainerWriter {
    /// An empty container.
    pub fn new() -> Self {
        ContainerWriter { sections: Vec::new() }
    }

    /// Adds a named section whose payload is produced by `fill`.
    pub fn section(&mut self, name: &str, fill: impl FnOnce(&mut Encoder)) {
        let mut enc = Encoder::new();
        fill(&mut enc);
        self.sections.push((name.to_owned(), enc.into_bytes()));
    }

    /// Serializes the container.
    pub fn finish(self) -> Vec<u8> {
        let table_len: usize = self.sections.iter().map(|(name, _)| 2 + name.len() + 8 + 4).sum();
        let payload_len: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(4 + 2 + 4 + table_len + payload_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }
}

/// A parsed, checksum-verified container borrowed from its byte string.
#[derive(Debug)]
pub struct ContainerReader<'a> {
    sections: Vec<(&'a str, &'a [u8])>,
}

/// Fixed-width header cursor (separate from the varint [`Decoder`]).
struct Header<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Header<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn take_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn take_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

impl<'a> ContainerReader<'a> {
    /// Parses and fully verifies a container: magic, version, structural
    /// bounds and every section's CRC.
    ///
    /// # Errors
    ///
    /// [`SnapError::BadMagic`], [`SnapError::Version`],
    /// [`SnapError::Truncated`] or [`SnapError::Corrupt`] depending on the
    /// first defect found.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, SnapError> {
        let mut h = Header { buf: bytes, pos: 0 };
        if h.take(4)? != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = h.take_u16()?;
        if version == 0 || version > FORMAT_VERSION {
            return Err(SnapError::Version { found: version, supported: FORMAT_VERSION });
        }
        let n = h.take_u32()? as usize;
        let mut table = Vec::with_capacity(n.min(bytes.len()));
        for _ in 0..n {
            let name_len = h.take_u16()? as usize;
            let name = std::str::from_utf8(h.take(name_len)?)
                .map_err(|_| SnapError::invalid("section name is not UTF-8"))?;
            let payload_len = h.take_u64()?;
            let payload_len = usize::try_from(payload_len)
                .map_err(|_| SnapError::invalid("section length exceeds usize"))?;
            let crc = h.take_u32()?;
            table.push((name, payload_len, crc));
        }
        let mut sections = Vec::with_capacity(table.len());
        for (name, len, crc) in table {
            let payload = h.take(len)?;
            if crc32(payload) != crc {
                return Err(SnapError::Corrupt { section: name.to_owned() });
            }
            sections.push((name, payload));
        }
        if h.pos != bytes.len() {
            return Err(SnapError::invalid("trailing bytes after last section"));
        }
        Ok(ContainerReader { sections })
    }

    /// A varint decoder over the named section's verified payload.
    ///
    /// # Errors
    ///
    /// [`SnapError::MissingSection`] if the container has no such section.
    pub fn section(&self, name: &str) -> Result<Decoder<'a>, SnapError> {
        self.sections
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, payload)| Decoder::new(payload))
            .ok_or_else(|| SnapError::MissingSection { section: name.to_owned() })
    }

    /// Section names in container order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| *n)
    }

    /// Total payload bytes across all sections.
    pub fn payload_len(&self) -> usize {
        self.sections.iter().map(|(_, p)| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ContainerWriter::new();
        w.section("alpha", |e| e.put_u64(12345));
        w.section("beta", |e| {
            e.put_str("hello");
            e.put_bool(true);
        });
        w.finish()
    }

    #[test]
    fn round_trip() {
        let bytes = sample();
        let r = ContainerReader::parse(&bytes).unwrap();
        assert_eq!(r.section_names().collect::<Vec<_>>(), ["alpha", "beta"]);
        let mut d = r.section("alpha").unwrap();
        assert_eq!(d.take_u64().unwrap(), 12345);
        d.finish().unwrap();
        let mut d = r.section("beta").unwrap();
        assert_eq!(d.take_str().unwrap(), "hello");
        assert!(d.take_bool().unwrap());
    }

    #[test]
    fn missing_section() {
        let bytes = sample();
        let r = ContainerReader::parse(&bytes).unwrap();
        assert_eq!(
            r.section("gamma").unwrap_err(),
            SnapError::MissingSection { section: "gamma".into() }
        );
    }

    #[test]
    fn bad_magic() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert_eq!(ContainerReader::parse(&bytes).unwrap_err(), SnapError::BadMagic);
        assert_eq!(ContainerReader::parse(b"hi").unwrap_err(), SnapError::Truncated);
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample();
        bytes[4] = 0xFF;
        bytes[5] = 0x7F;
        assert!(matches!(ContainerReader::parse(&bytes), Err(SnapError::Version { .. })));
    }

    #[test]
    fn every_truncation_rejected() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            assert!(ContainerReader::parse(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn every_payload_bit_flip_detected() {
        let bytes = sample();
        let payload_start = bytes.len() - ContainerReader::parse(&bytes).unwrap().payload_len();
        for i in payload_start..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x40;
            assert!(
                matches!(ContainerReader::parse(&evil), Err(SnapError::Corrupt { .. })),
                "flip at {i} undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(ContainerReader::parse(&bytes), Err(SnapError::Invalid(_))));
    }
}
