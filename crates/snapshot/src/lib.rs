//! # snapshot — versioned, checksummed binary simulator checkpoints
//!
//! This crate is the persistence layer of the reproduction: it turns live
//! simulator state into compact, self-describing byte strings and back,
//! **bit-exactly**. A restored simulator must replay the same event stream
//! as the original, so the codec never goes through floating-point text,
//! platform-dependent layouts or hash-ordered containers — every field is
//! written explicitly, in a fixed order, by a hand-written [`Snapshot`]
//! implementation that mirrors the simulator's manual `clone_from` chain.
//!
//! Three layers, bottom up:
//!
//! * [`codec`] — a varint-packed [`codec::Encoder`]/[`codec::Decoder`] pair
//!   and the [`Snapshot`] trait with implementations for primitives,
//!   `Option`, `Vec`, tuples and strings. Decoding is total: malformed
//!   input yields a typed [`SnapError`], never a panic.
//! * [`container`] — the on-disk/file format: magic + format version +
//!   named section table with a CRC-32 per section
//!   ([`container::ContainerWriter`] / [`container::ContainerReader`]).
//!   Truncated bytes, flipped bits and future format versions are all
//!   rejected with distinct errors before any payload is interpreted.
//! * [`store`] — a content-addressed [`store::SnapshotStore`]: an
//!   in-memory LRU in front of an on-disk cache directory, keyed by a
//!   stable hash of whatever identifies the cached state (application,
//!   configuration, warmup depth). Disk writes go through a pluggable
//!   atomic writer so embedders reuse their crash-safe I/O path.
//!
//! The crate is `std`-only and dependency-free by design: it sits below
//! every simulator crate in the dependency graph.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod container;
pub mod crc32;
pub mod error;
pub mod store;

pub use codec::{Decoder, Encoder, Snapshot};
pub use container::{ContainerReader, ContainerWriter, FORMAT_VERSION};
pub use error::SnapError;
pub use store::{content_key, SnapshotStore};
