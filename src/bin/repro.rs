//! Command-line driver for the reproduction harness.
//!
//! ```text
//! repro list                           list every figure/table experiment
//! repro run <id> [--full] [--threads N] [--faults SPEC]   run one experiment
//! repro all [--full] [--threads N] [--faults SPEC]        run every experiment
//! repro serve [--tenants N] [--epochs N] [--shards N] [--faults SPEC] ...
//! repro snapshot save <app> [--epochs N] [--full] [--out PATH]
//! repro snapshot restore <path> [--epochs N]
//! repro snapshot ls
//! repro snapshot verify <path>
//! ```
//!
//! `--full` selects the paper's 64-CU platform at standard workload scale
//! (equivalent to `PCSTALL_FULL=1`); the default is the reduced 16-CU
//! preset. `--threads N` sizes the process-global worker pool that grid
//! sweeps and fork–pre-execute oracle sampling run on (equivalent to
//! `PCSTALL_THREADS=N`; default: physical parallelism capped at 8).
//! Results are bit-identical at every thread count.
//!
//! `--faults SPEC` degrades every experiment's GPU with the seeded
//! fault-injection layer (telemetry dropout/staleness/noise, dropped and
//! delayed V/f transitions, transient thermal clamps) and attaches the
//! default degradation ladder. `SPEC` is comma-separated `key=value`
//! pairs, e.g. `--faults rate=0.05,seed=7` or
//! `--faults drop=0.1,noise=0.2,clamp=0.01`; see `faults::FaultConfig`.
//! Normalization baselines always run fault-free, so normalized figures
//! show what the faults cost. Outputs are printed and archived under
//! `results/`.
//!
//! `--deadline MS` and `--max-retries N` tune the supervised executor
//! (the `supervision` experiment): `--deadline` bounds each grid cell's
//! wall-clock per attempt (the watchdog cancels a lane past it and the
//! simulation preempts into a snapshot at the next epoch boundary), and
//! `--max-retries` caps the deterministic retry rounds for failed or
//! timed-out cells. Example: `repro run supervision --faults
//! hang=0.2,seed=7 --deadline 5000 --max-retries 3`.
//!
//! `--snapshot-dir DIR` points the content-addressed warmup snapshot
//! store (and `snapshot` subcommand) at `DIR` instead of the default
//! `results/.snapcache/`. `--resume` enables per-grid resume journals in
//! that directory: every completed (workload × design) cell is persisted
//! as it finishes, and a restarted invocation skips the journaled cells —
//! the resumed output is bit-identical to an uninterrupted run.
//!
//! The `serve` subcommand runs a bounded chaos soak of the multi-tenant
//! DVFS policy server (the `serve` crate): seeded synthetic tenants driven
//! closed-loop through admission, backpressure, the degradation ladder and
//! the global power-cap arbiter, with `--faults` storms, `--torn` snapshot
//! reads and an optional `--kill-at` mid-soak restart. It prints the typed
//! SLO summary (or `--json`) and exits 2 on any SLO violation.
//!
//! The `snapshot` subcommand works with versioned binary simulator
//! snapshots directly: `save` warms an application up and snapshots the
//! GPU, `restore` rehydrates one and steps it to prove it is live, `ls`
//! lists the cache, and `verify` checks a snapshot decodes and round-trips
//! bit-exactly.
//!
//! Exit codes: 0 on success, 1 on usage errors, 2 when an experiment
//! fails (the typed `HarnessError` is printed to stderr).

use gpu_sim::gpu::Gpu;
use harness::figures::{self, FigureResult, Preset};
use harness::runner::{FaultSetup, RunConfig};
use harness::{snapcache, sweeps};
use pcstall::policy::PolicyKind;
use std::path::PathBuf;
use std::process::ExitCode;

type FigureFn = fn(&Preset) -> FigureResult;

/// Exit code for a failed experiment (vs 1 for usage errors).
const EXIT_EXPERIMENT_FAILED: u8 = 2;

/// Every registered experiment: (id, description, entry point).
fn registry() -> Vec<(&'static str, &'static str, FigureFn)> {
    vec![
        ("fig01a", "ED²P improvement vs DVFS epoch duration", figures::fig01a),
        ("fig01b", "prediction accuracy vs epoch duration", figures::fig01b),
        ("fig05", "instructions-vs-frequency linearity (comd)", figures::fig05),
        ("fig06", "sensitivity profiles (dgemm/hacc/BwdBN/xsbench)", figures::fig06),
        ("fig07", "epoch-to-epoch sensitivity variability", figures::fig07),
        ("fig08", "per-wavefront contributions (BwdBN)", figures::fig08),
        ("fig10", "same-PC iteration stability", figures::fig10),
        ("fig11", "wavefront-slot contention & PC offset tuning", figures::fig11),
        ("fig14", "prediction accuracy of all Table III designs", figures::fig14),
        ("fig15", "per-workload ED²P vs static 1.7 GHz", figures::fig15),
        ("fig16", "frequency residency under PCSTALL", figures::fig16),
        ("fig17", "geomean EDP vs epoch duration", figures::fig17),
        ("fig18a", "energy savings under perf-loss limits", figures::fig18a),
        ("fig18b", "ED²P vs V/f-domain granularity", figures::fig18b),
        ("table1", "hardware storage overhead per design", figures::table1),
        ("table2", "the workload suite", figures::table2_figure),
        ("resilience", "energy/slowdown vs fault rate (degradation ladder)", figures::resilience),
        ("supervision", "grid completion under injected hang chaos", figures::supervision),
    ]
}

fn preset(args: &[String]) -> Preset {
    if args.iter().any(|a| a == "--full") {
        Preset::full()
    } else {
        Preset::from_env()
    }
}

/// Applies a `--threads N` flag to the process-global worker pool (must
/// run before anything touches the pool). Returns `Err` on a malformed
/// flag.
fn apply_threads_flag(args: &[String]) -> Result<(), String> {
    let Some(pos) = args.iter().position(|a| a == "--threads") else {
        return Ok(());
    };
    let n: usize = args
        .get(pos + 1)
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .ok_or("--threads requires a positive integer, e.g. --threads 8")?;
    if !exec::set_global_threads(n) {
        return Err("worker pool already initialized; pass --threads earlier".into());
    }
    Ok(())
}

/// Applies a `--faults SPEC` flag: parses the spec, attaches the default
/// degradation ladder and installs it as the process-wide fault override.
fn apply_faults_flag(args: &[String]) -> Result<(), String> {
    let Some(pos) = args.iter().position(|a| a == "--faults") else {
        return Ok(());
    };
    let spec = args
        .get(pos + 1)
        .filter(|s| !s.starts_with("--"))
        .ok_or("--faults requires a spec, e.g. --faults rate=0.05,seed=7")?;
    let cfg =
        faults::FaultConfig::parse(spec).map_err(|e| format!("bad --faults spec: {}", e.0))?;
    if !figures::set_fault_override(FaultSetup::with_default_ladder(cfg)) {
        return Err("fault override already installed; pass --faults once".into());
    }
    Ok(())
}

/// Applies `--deadline MS` and `--max-retries N`: installs the
/// process-wide supervision override the `supervision` experiment (and
/// any supervised grid) picks up.
fn apply_supervise_flags(args: &[String]) -> Result<(), String> {
    let deadline_ms = match args.iter().position(|a| a == "--deadline") {
        None => None,
        Some(_) => Some(
            flag_value(args, "--deadline")
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .ok_or("--deadline requires a positive millisecond count, e.g. --deadline 5000")?,
        ),
    };
    let max_retries = match args.iter().position(|a| a == "--max-retries") {
        None => None,
        Some(_) => Some(
            flag_value(args, "--max-retries")
                .and_then(|v| v.parse::<u32>().ok())
                .ok_or("--max-retries requires a non-negative integer, e.g. --max-retries 3")?,
        ),
    };
    if deadline_ms.is_none() && max_retries.is_none() {
        return Ok(());
    }
    let over = figures::SuperviseOverride { deadline_ms, max_retries };
    if !figures::set_supervise_override(over) {
        return Err(
            "supervision override already installed; pass --deadline/--max-retries once".into()
        );
    }
    Ok(())
}

/// Reads the value following `flag`, rejecting a trailing flag as a value.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.get(pos + 1).filter(|s| !s.starts_with("--"))
}

/// Applies `--snapshot-dir DIR` (points the warmup store and the
/// `snapshot` subcommand at `DIR`) and `--resume` (enables per-grid
/// resume journals in that directory).
fn apply_snapshot_flags(args: &[String]) -> Result<(), String> {
    let dir = if args.iter().any(|a| a == "--snapshot-dir") {
        let d = flag_value(args, "--snapshot-dir")
            .ok_or("--snapshot-dir requires a path, e.g. --snapshot-dir results/.snapcache")?;
        let dir = PathBuf::from(d);
        if !snapcache::set_dir(Some(dir.clone())) {
            return Err("snapshot store already initialized; pass --snapshot-dir earlier".into());
        }
        dir
    } else {
        snapcache::default_dir()
    };
    if args.iter().any(|a| a == "--resume") && !sweeps::set_resume_dir(dir) {
        return Err("resume directory already installed; pass --resume once".into());
    }
    Ok(())
}

/// A warmup-grade run configuration on the preset's platform (the policy
/// never engages during warmup, so a static placeholder is exact).
fn warmup_cfg(p: &Preset) -> RunConfig {
    let mut cfg = RunConfig::paper(PolicyKind::Static(1700));
    cfg.gpu = p.gpu;
    cfg
}

/// The `repro serve` subcommand: a bounded chaos soak of the multi-tenant
/// policy server. Faults reuse the same `--faults SPEC` grammar as the
/// experiments (`storm=RATE` selects the bursty correlated profile);
/// `hang=RATE` arms silent per-tenant hang windows and `--torn RATE` tears
/// restore reads. Exits 2 if any SLO is violated (tenants lost, tenants
/// unaccounted, or a missed global-cap epoch).
fn serve_cmd(args: &[String]) -> ExitCode {
    const USAGE: &str = "usage: repro serve [--tenants N] [--epochs N] [--shards N] \
                         [--max-live N] [--kill-at E] [--torn RATE] [--seed N] \
                         [--faults SPEC] [--threads N] [--json]";
    let num = |flag: &str, default: u64| -> Result<u64, String> {
        match args.iter().position(|a| a == flag) {
            None => Ok(default),
            Some(_) => flag_value(args, flag)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{flag} requires a non-negative integer")),
        }
    };
    let mut cfg = serve::SoakConfig {
        tenants: match num("--tenants", 64) {
            Ok(n) => n.max(1),
            Err(m) => {
                eprintln!("{m}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        },
        ..serve::SoakConfig::default()
    };
    let flags: Result<(), String> = (|| {
        cfg.epochs = num("--epochs", 200)?.max(1);
        cfg.shards = num("--shards", 1)?.max(1) as usize;
        // Default live cap at 3/4 of the fleet: eviction churn on by
        // default, so the restore path is exercised, not just compiled.
        cfg.max_live = num("--max-live", (cfg.tenants * 3 / 4).max(1))? as usize;
        cfg.kill_at = match args.iter().position(|a| a == "--kill-at") {
            None => None,
            Some(_) => Some(
                flag_value(args, "--kill-at")
                    .and_then(|v| v.parse().ok())
                    .ok_or("--kill-at requires an epoch number")?,
            ),
        };
        cfg.seed = num("--seed", 42)?;
        if args.iter().any(|a| a == "--torn") {
            cfg.torn_read_rate = flag_value(args, "--torn")
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|r| (0.0..=1.0).contains(r))
                .ok_or("--torn requires a probability in [0, 1]")?;
        }
        if let Some(spec) = flag_value(args, "--faults") {
            cfg.faults = faults::FaultConfig::parse(spec)
                .map_err(|e| format!("bad --faults spec: {}", e.0))?;
        }
        Ok(())
    })();
    if let Err(m) = flags {
        eprintln!("{m}\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let t0 = std::time::Instant::now();
    let report = serve::run_soak(&cfg);
    let secs = t0.elapsed().as_secs_f64();
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        let s = &report.stats;
        println!(
            "policy server soak: {} tenants x {} epochs, {} shard(s), cap {:.1} W{}",
            report.tenants,
            report.epochs,
            report.shards,
            report.power_cap_w,
            if report.killed { ", killed+recovered mid-soak" } else { "" },
        );
        println!(
            "  {} decisions in {secs:.2}s ({:.0}/s), digest {:016x}",
            s.decisions,
            s.decisions as f64 / secs.max(1e-9),
            report.digest,
        );
        println!(
            "  admission: {} admitted, {} evictions, {} restores ({} torn reads, {} cold rebuilds), {} live + {} stored",
            s.admitted, s.evictions, s.restores, s.torn_reads, s.rebuilt_cold,
            report.live, report.evicted,
        );
        println!(
            "  ladder: {} normal / {} hold / {} stall / {} safe; breakers: {} trips, {} recoveries ({} hung tenants)",
            s.rung_normal, s.rung_hold, s.rung_stall, s.rung_safe,
            report.supervision.breaker_trips, report.supervision.recovered, report.hung_tenants,
        );
        println!(
            "  ingest: {} accepted, {} shed {:?}; power cap: {} met / {} missed",
            report.shed.accepted,
            report.shed.total(),
            report.shed.per_tier,
            s.cap_epochs_met,
            s.cap_epochs_missed,
        );
        println!(
            "  SLOs: {} (lost={}, accounted={}, cap-missed={})",
            if report.slos_met() { "MET" } else { "VIOLATED" },
            s.lost_tenants,
            report.accounted(),
            s.cap_epochs_missed,
        );
    }
    if report.slos_met() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_EXPERIMENT_FAILED)
    }
}

/// The `repro snapshot <save|restore|ls|verify>` subcommand.
fn snapshot_cmd(args: &[String]) -> ExitCode {
    const USAGE: &str = "usage: repro snapshot <save <app> [--epochs N] [--full] [--out PATH] \
                         | restore <path> [--epochs N] | ls | verify <path>>";
    let epochs = |default: usize| -> Result<usize, String> {
        match args.iter().position(|a| a == "--epochs") {
            None => Ok(default),
            Some(_) => flag_value(args, "--epochs")
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .ok_or_else(|| "--epochs requires a positive integer".to_string()),
        }
    };
    let fail = |msg: &str| {
        eprintln!("{msg}");
        ExitCode::from(EXIT_EXPERIMENT_FAILED)
    };
    match args.get(1).map(String::as_str) {
        Some("save") => {
            let Some(name) = args.get(2).filter(|a| !a.starts_with("--")) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let n = match epochs(40) {
                Ok(n) => n,
                Err(m) => return fail(&m),
            };
            let p = preset(args);
            let app = match harness::error::app(name, p.scale) {
                Ok(app) => app,
                Err(e) => return fail(&e.to_string()),
            };
            let cfg = warmup_cfg(&p);
            // Populate the content-addressed store (so later warm runs hit
            // it) and report where the state landed.
            let gpu = match snapcache::warmed_gpu(&app, &cfg, n) {
                Ok(gpu) => gpu,
                Err(e) => return fail(&e.to_string()),
            };
            let bytes = gpu.save_snapshot();
            let key = snapcache::warmup_key(&app, &cfg, n);
            if let Some(out) = flag_value(args, "--out") {
                let path = PathBuf::from(out);
                if let Err(e) = harness::report::write_atomic_bytes(&path, &bytes) {
                    return fail(&format!("cannot write {}: {e}", path.display()));
                }
                println!("wrote {} ({} bytes)", path.display(), bytes.len());
            }
            println!(
                "snapshot of `{name}` after {n} warmup epochs: key {key}, {} bytes, cached under {}",
                bytes.len(),
                snapcache::dir().unwrap_or_else(|| PathBuf::from("<memory>")).display(),
            );
            ExitCode::SUCCESS
        }
        Some("restore") => {
            let Some(path) = args.get(2).filter(|a| !a.starts_with("--")) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let n = match epochs(4) {
                Ok(n) => n,
                Err(m) => return fail(&m),
            };
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => return fail(&format!("cannot read {path}: {e}")),
            };
            let mut gpu = match Gpu::load_snapshot(&bytes) {
                Ok(gpu) => gpu,
                Err(e) => return fail(&format!("cannot decode snapshot {path}: {e}")),
            };
            let duration = dvfs::epoch::EpochConfig::default().duration;
            let mut stats = gpu_sim::stats::EpochStats::empty();
            for _ in 0..n {
                if gpu.is_done() {
                    break;
                }
                gpu.run_epoch_into(duration, &mut stats);
            }
            println!(
                "restored {path}: stepped {n} epoch(s), now at {:.3} us, app {}",
                gpu.now().as_secs_f64() * 1e6,
                if gpu.is_done() { "complete" } else { "running" },
            );
            ExitCode::SUCCESS
        }
        Some("ls") => {
            let Some(dir) = snapcache::dir() else {
                println!("snapshot store is memory-only (no directory)");
                return ExitCode::SUCCESS;
            };
            let Ok(rd) = std::fs::read_dir(&dir) else {
                println!("{}: empty (directory not created yet)", dir.display());
                return ExitCode::SUCCESS;
            };
            let mut rows: Vec<(String, u64)> = rd
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let name = e.file_name().to_string_lossy().into_owned();
                    (name.ends_with(".snap") || name.ends_with(".journal"))
                        .then(|| (name, e.metadata().map(|m| m.len()).unwrap_or(0)))
                })
                .collect();
            rows.sort();
            println!("{} ({} entries):", dir.display(), rows.len());
            for (name, len) in rows {
                println!("  {len:>10}  {name}");
            }
            ExitCode::SUCCESS
        }
        Some("verify") => {
            let Some(path) = args.get(2).filter(|a| !a.starts_with("--")) else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => return fail(&format!("cannot read {path}: {e}")),
            };
            let gpu = match Gpu::load_snapshot(&bytes) {
                Ok(gpu) => gpu,
                Err(e) => return fail(&format!("{path}: INVALID — {e}")),
            };
            let round = gpu.save_snapshot();
            if round != bytes {
                return fail(&format!("{path}: INVALID — decode/encode round trip differs"));
            }
            let sections = match snapshot::ContainerReader::parse(&bytes) {
                Ok(c) => c.section_names().collect::<Vec<_>>().join(", "),
                Err(e) => return fail(&format!("{path}: INVALID — {e}")),
            };
            println!(
                "{path}: OK — {} bytes, sections [{sections}], {} CUs, t = {:.3} us, \
                 round trip bit-exact",
                bytes.len(),
                gpu.config().n_cus,
                gpu.now().as_secs_f64() * 1e6,
            );
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = apply_threads_flag(&args) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    if let Err(msg) = apply_faults_flag(&args) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    if let Err(msg) = apply_snapshot_flags(&args) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    if let Err(msg) = apply_supervise_flags(&args) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available experiments (run with `repro run <id>`):\n");
            for (id, desc, _) in registry() {
                println!("  {id:10} {desc}");
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(id) = args.get(1) else {
                eprintln!("usage: repro run <id> [--full] [--threads N] [--faults SPEC]");
                return ExitCode::FAILURE;
            };
            let Some((_name, _, f)) = registry().into_iter().find(|(n, _, _)| n == id) else {
                eprintln!("unknown experiment `{id}`; see `repro list`");
                return ExitCode::FAILURE;
            };
            let p = preset(&args);
            match f(&p) {
                Ok(out) => println!("{}", out.render()),
                Err(e) => {
                    eprintln!("{id} failed: {e}");
                    return ExitCode::from(EXIT_EXPERIMENT_FAILED);
                }
            }
            println!(
                "(preset: {}; pass --full for the 64-CU paper platform)",
                if p.full { "full" } else { "reduced" }
            );
            ExitCode::SUCCESS
        }
        Some("all") => {
            let p = preset(&args);
            for (id, _, f) in registry() {
                eprintln!("== {id} ==");
                match f(&p) {
                    Ok(out) => println!("{}", out.render()),
                    Err(e) => {
                        eprintln!("{id} failed: {e}");
                        return ExitCode::from(EXIT_EXPERIMENT_FAILED);
                    }
                }
            }
            let cache = harness::sweeps::global_baseline_cache();
            eprintln!(
                "simulator runs: {} total; baseline cache: {} distinct, {} hits, {} misses",
                harness::session::sim_runs(),
                cache.len(),
                cache.hits(),
                cache.misses()
            );
            ExitCode::SUCCESS
        }
        Some("snapshot") => snapshot_cmd(&args),
        Some("serve") => serve_cmd(&args),
        _ => {
            eprintln!(
                "usage: repro <list|run <id>|all|serve|snapshot <save|restore|ls|verify>> \
                 [--full] [--threads N] [--faults SPEC] [--deadline MS] [--max-retries N] \
                 [--snapshot-dir DIR] [--resume]"
            );
            ExitCode::FAILURE
        }
    }
}
