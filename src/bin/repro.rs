//! Command-line driver for the reproduction harness.
//!
//! ```text
//! repro list                           list every figure/table experiment
//! repro run <id> [--full] [--threads N] [--faults SPEC]   run one experiment
//! repro all [--full] [--threads N] [--faults SPEC]        run every experiment
//! ```
//!
//! `--full` selects the paper's 64-CU platform at standard workload scale
//! (equivalent to `PCSTALL_FULL=1`); the default is the reduced 16-CU
//! preset. `--threads N` sizes the process-global worker pool that grid
//! sweeps and fork–pre-execute oracle sampling run on (equivalent to
//! `PCSTALL_THREADS=N`; default: physical parallelism capped at 8).
//! Results are bit-identical at every thread count.
//!
//! `--faults SPEC` degrades every experiment's GPU with the seeded
//! fault-injection layer (telemetry dropout/staleness/noise, dropped and
//! delayed V/f transitions, transient thermal clamps) and attaches the
//! default degradation ladder. `SPEC` is comma-separated `key=value`
//! pairs, e.g. `--faults rate=0.05,seed=7` or
//! `--faults drop=0.1,noise=0.2,clamp=0.01`; see `faults::FaultConfig`.
//! Normalization baselines always run fault-free, so normalized figures
//! show what the faults cost. Outputs are printed and archived under
//! `results/`.
//!
//! Exit codes: 0 on success, 1 on usage errors, 2 when an experiment
//! fails (the typed `HarnessError` is printed to stderr).

use harness::figures::{self, FigureResult, Preset};
use harness::runner::FaultSetup;
use std::process::ExitCode;

type FigureFn = fn(&Preset) -> FigureResult;

/// Exit code for a failed experiment (vs 1 for usage errors).
const EXIT_EXPERIMENT_FAILED: u8 = 2;

/// Every registered experiment: (id, description, entry point).
fn registry() -> Vec<(&'static str, &'static str, FigureFn)> {
    vec![
        ("fig01a", "ED²P improvement vs DVFS epoch duration", figures::fig01a),
        ("fig01b", "prediction accuracy vs epoch duration", figures::fig01b),
        ("fig05", "instructions-vs-frequency linearity (comd)", figures::fig05),
        ("fig06", "sensitivity profiles (dgemm/hacc/BwdBN/xsbench)", figures::fig06),
        ("fig07", "epoch-to-epoch sensitivity variability", figures::fig07),
        ("fig08", "per-wavefront contributions (BwdBN)", figures::fig08),
        ("fig10", "same-PC iteration stability", figures::fig10),
        ("fig11", "wavefront-slot contention & PC offset tuning", figures::fig11),
        ("fig14", "prediction accuracy of all Table III designs", figures::fig14),
        ("fig15", "per-workload ED²P vs static 1.7 GHz", figures::fig15),
        ("fig16", "frequency residency under PCSTALL", figures::fig16),
        ("fig17", "geomean EDP vs epoch duration", figures::fig17),
        ("fig18a", "energy savings under perf-loss limits", figures::fig18a),
        ("fig18b", "ED²P vs V/f-domain granularity", figures::fig18b),
        ("table1", "hardware storage overhead per design", figures::table1),
        ("table2", "the workload suite", figures::table2_figure),
        ("resilience", "energy/slowdown vs fault rate (degradation ladder)", figures::resilience),
    ]
}

fn preset(args: &[String]) -> Preset {
    if args.iter().any(|a| a == "--full") {
        Preset::full()
    } else {
        Preset::from_env()
    }
}

/// Applies a `--threads N` flag to the process-global worker pool (must
/// run before anything touches the pool). Returns `Err` on a malformed
/// flag.
fn apply_threads_flag(args: &[String]) -> Result<(), String> {
    let Some(pos) = args.iter().position(|a| a == "--threads") else {
        return Ok(());
    };
    let n: usize = args
        .get(pos + 1)
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .ok_or("--threads requires a positive integer, e.g. --threads 8")?;
    if !exec::set_global_threads(n) {
        return Err("worker pool already initialized; pass --threads earlier".into());
    }
    Ok(())
}

/// Applies a `--faults SPEC` flag: parses the spec, attaches the default
/// degradation ladder and installs it as the process-wide fault override.
fn apply_faults_flag(args: &[String]) -> Result<(), String> {
    let Some(pos) = args.iter().position(|a| a == "--faults") else {
        return Ok(());
    };
    let spec = args
        .get(pos + 1)
        .filter(|s| !s.starts_with("--"))
        .ok_or("--faults requires a spec, e.g. --faults rate=0.05,seed=7")?;
    let cfg =
        faults::FaultConfig::parse(spec).map_err(|e| format!("bad --faults spec: {}", e.0))?;
    if !figures::set_fault_override(FaultSetup::with_default_ladder(cfg)) {
        return Err("fault override already installed; pass --faults once".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = apply_threads_flag(&args) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    if let Err(msg) = apply_faults_flag(&args) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available experiments (run with `repro run <id>`):\n");
            for (id, desc, _) in registry() {
                println!("  {id:10} {desc}");
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(id) = args.get(1) else {
                eprintln!("usage: repro run <id> [--full] [--threads N] [--faults SPEC]");
                return ExitCode::FAILURE;
            };
            let Some((_name, _, f)) = registry().into_iter().find(|(n, _, _)| n == id) else {
                eprintln!("unknown experiment `{id}`; see `repro list`");
                return ExitCode::FAILURE;
            };
            let p = preset(&args);
            match f(&p) {
                Ok(out) => println!("{}", out.render()),
                Err(e) => {
                    eprintln!("{id} failed: {e}");
                    return ExitCode::from(EXIT_EXPERIMENT_FAILED);
                }
            }
            println!(
                "(preset: {}; pass --full for the 64-CU paper platform)",
                if p.full { "full" } else { "reduced" }
            );
            ExitCode::SUCCESS
        }
        Some("all") => {
            let p = preset(&args);
            for (id, _, f) in registry() {
                eprintln!("== {id} ==");
                match f(&p) {
                    Ok(out) => println!("{}", out.render()),
                    Err(e) => {
                        eprintln!("{id} failed: {e}");
                        return ExitCode::from(EXIT_EXPERIMENT_FAILED);
                    }
                }
            }
            let cache = harness::sweeps::global_baseline_cache();
            eprintln!(
                "simulator runs: {} total; baseline cache: {} distinct, {} hits, {} misses",
                harness::session::sim_runs(),
                cache.len(),
                cache.hits(),
                cache.misses()
            );
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: repro <list|run <id>|all> [--full] [--threads N] [--faults SPEC]");
            ExitCode::FAILURE
        }
    }
}
