//! # pcstall-repro — reproduction of *Predict; Don't React* (ASPLOS 2023)
//!
//! A from-scratch Rust implementation of the paper's entire evaluation
//! stack for fine-grain GPU DVFS:
//!
//! | Crate | Role |
//! |---|---|
//! | [`gpu_sim`] | Deterministic wavefront-granular GPU timing simulator with per-CU clock domains |
//! | [`workloads`] | The 16 synthetic Table II applications (9 HPC + 7 MI) |
//! | [`power`] | V(f) curve, per-CU power, energy integration, ED^nP metrics, Table I storage model |
//! | [`dvfs`] | V/f states, domain partitioning, fixed-time epochs, EDP/ED²P/energy objectives |
//! | [`pcstall`] | The paper's contribution: wavefront-level estimation, the PC-indexed sensitivity table, all Table III designs, the fork–pre-execute oracle |
//! | [`harness`] | Experiment runner regenerating every figure and table |
//!
//! ## Quickstart
//!
//! ```
//! use harness::runner::{run, RunConfig};
//! use pcstall::policy::{PcStallConfig, PolicyKind};
//! use workloads::{by_name, Scale};
//!
//! let app = by_name("comd", Scale::Quick).expect("registered workload");
//! let mut cfg = RunConfig::reduced(PolicyKind::PcStall(PcStallConfig::default()));
//! cfg.gpu = gpu_sim::config::GpuConfig::tiny();
//! cfg.max_epochs = 10;
//! let result = run(&app, &cfg);
//! assert!(result.epochs > 0);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! per-figure reproduction harness (`cargo bench --bench fig14_accuracy`).

pub use dvfs;
pub use gpu_sim;
pub use harness;
pub use pcstall;
pub use power;
pub use workloads;
