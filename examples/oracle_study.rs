//! Fork–pre-execute oracle walkthrough (paper Section 5.1, Figure 13):
//! clone the simulator, run one sampling copy per V/f state with shuffled
//! per-domain frequencies, and recover every domain's exact
//! instructions-vs-frequency curve from identical starting conditions.
//! Also verifies the paper's Figure 5 observation: the curves are
//! near-linear (high R²) over the 1.3–2.2 GHz range.
//!
//! ```sh
//! cargo run --release --example oracle_study
//! ```

use dvfs::domain::DomainMap;
use dvfs::states::FreqStates;
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::Gpu;
use gpu_sim::time::Femtos;
use pcstall::oracle;
use pcstall::sensitivity::fit_line;
use workloads::{by_name, Scale};

fn main() {
    let app = by_name("comd", Scale::Quick).expect("registered");
    let gpu_cfg = GpuConfig::small();
    let mut gpu = Gpu::new(gpu_cfg, app);
    let states = FreqStates::paper();
    let domains = DomainMap::per_cu(gpu.n_cus());

    // Let the machine reach steady state, then fork-sample one epoch.
    gpu.run_epoch(Femtos::from_micros(5));
    println!(
        "fork–pre-execute sampling: {} clones (one per V/f state), shuffled across {} domains\n",
        states.len(),
        domains.len()
    );
    let samples = oracle::sample(&gpu, Femtos::from_micros(1), &states, &domains);

    println!("domain | I(1.3GHz) .. I(2.2GHz)                                    | slope S | R^2");
    let mut r2_sum = 0.0;
    let mut n = 0;
    for d in 0..domains.len().min(8) {
        let curve = &samples.domain_curves[d];
        let pts: Vec<(f64, f64)> =
            states.iter().map(|f| f.mhz() as f64).zip(curve.iter().copied()).collect();
        let (model, r2) = fit_line(&pts);
        r2_sum += r2;
        n += 1;
        let vals: Vec<String> = curve.iter().map(|v| format!("{v:5.0}")).collect();
        println!("  {d:4} | {} | {:7.3} | {r2:.3}", vals.join(" "), model.s);
    }
    println!(
        "\nmean R^2 over shown domains: {:.3} (paper reports 0.82 on average — Fig. 5)",
        r2_sum / n as f64
    );

    // Demonstrate exact rollback: the original simulator was not perturbed.
    let mut replay_a = gpu.clone();
    let mut replay_b = gpu.clone();
    let a = replay_a.run_epoch(Femtos::from_micros(1));
    let b = replay_b.run_epoch(Femtos::from_micros(1));
    assert_eq!(a, b, "deterministic rollback re-execution");
    println!("rollback re-execution verified: two clones replayed bit-identically.");
}
