//! Quickstart: run one workload under PCSTALL fine-grain DVFS and compare
//! it against the static 1.7 GHz baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use harness::runner::{run, run_static_baseline, RunConfig};
use pcstall::policy::{PcStallConfig, PolicyKind};
use workloads::{by_name, Scale};

fn main() {
    // A 16-CU GPU with per-CU V/f domains, 1 µs epochs, ED²P objective.
    let cfg = RunConfig::reduced(PolicyKind::PcStall(PcStallConfig::default()));

    let app = by_name("comd", Scale::Quick).expect("comd is a registered Table II workload");
    println!("running `{}` under PCSTALL (1 µs epochs, per-CU V/f domains)...", app.name);

    let pcstall = run(&app, &cfg);
    let baseline = run_static_baseline(&app, &cfg);

    println!();
    println!("                      PCSTALL      static 1.7 GHz");
    println!(
        "energy          {:>10.4} J {:>12.4} J",
        pcstall.metrics.energy_j, baseline.metrics.energy_j
    );
    println!(
        "delay           {:>10.2} us {:>11.2} us",
        pcstall.metrics.delay_s * 1e6,
        baseline.metrics.delay_s * 1e6
    );
    println!(
        "ED^2P           {:>10.3e}   {:>12.3e}",
        pcstall.metrics.ed2p(),
        baseline.metrics.ed2p()
    );
    println!();
    println!(
        "ED^2P improvement over static: {:+.1}%",
        (1.0 - pcstall.metrics.ed2p_vs(&baseline.metrics)) * 100.0
    );
    println!(
        "prediction accuracy: {:.1}% over {} epochs",
        pcstall.accuracy * 100.0,
        pcstall.epochs
    );
    let states = dvfs::states::FreqStates::paper();
    println!("mean selected frequency: {:.0} MHz", pcstall.mean_freq_mhz(&states));
}
