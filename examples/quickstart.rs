//! Quickstart: run one workload under PCSTALL fine-grain DVFS and compare
//! it against the static 1.7 GHz baseline.
//!
//! The PCSTALL leg drives the layered engine explicitly — a [`Session`]
//! stepped one epoch at a time with the standard observers attached — to
//! show how custom harnesses compose their own measurement stacks; the
//! baseline uses the one-call [`run_static_baseline`] wrapper built on the
//! same engine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use harness::runner::{run_static_baseline, RunConfig};
use harness::session::{AccuracyObserver, EnergyObserver, ResidencyObserver, Session};
use pcstall::policy::{PcStallConfig, PolicyKind};
use power::model::PowerModel;
use workloads::{by_name, Scale};

fn main() {
    // A 16-CU GPU with per-CU V/f domains, 1 µs epochs, ED²P objective.
    let cfg = RunConfig::reduced(PolicyKind::PcStall(PcStallConfig::default()));

    let app = by_name("comd", Scale::Quick).expect("comd is a registered Table II workload");
    println!("running `{}` under PCSTALL (1 µs epochs, per-CU V/f domains)...", app.name);

    // Explicit composition: the session owns the GPU and the policy; each
    // cross-cutting measurement is an independent observer.
    let mut session = Session::new(&app, &cfg);
    let mut energy = EnergyObserver::new(PowerModel::new(cfg.power));
    let mut accuracy = AccuracyObserver::new();
    let mut residency = ResidencyObserver::new(cfg.states.clone());
    while session.step(&mut [&mut energy, &mut accuracy, &mut residency]) {
        // Step-granular control: a live energy readout every 16 epochs.
        if session.epochs().is_multiple_of(16) {
            println!("  epoch {:>4}: {:.4} J so far", session.epochs(), energy.energy_j());
        }
    }
    let mut pcstall = session.finalize();
    for obs in
        [&mut energy as &mut dyn harness::session::RunObserver, &mut accuracy, &mut residency]
    {
        obs.finish(&mut pcstall);
    }

    let baseline = run_static_baseline(&app, &cfg);

    println!();
    println!("                      PCSTALL      static 1.7 GHz");
    println!(
        "energy          {:>10.4} J {:>12.4} J",
        pcstall.metrics.energy_j, baseline.metrics.energy_j
    );
    println!(
        "delay           {:>10.2} us {:>11.2} us",
        pcstall.metrics.delay_s * 1e6,
        baseline.metrics.delay_s * 1e6
    );
    println!(
        "ED^2P           {:>10.3e}   {:>12.3e}",
        pcstall.metrics.ed2p(),
        baseline.metrics.ed2p()
    );
    println!();
    println!(
        "ED^2P improvement over static: {:+.1}%",
        (1.0 - pcstall.metrics.ed2p_vs(&baseline.metrics)) * 100.0
    );
    println!(
        "prediction accuracy: {:.1}% over {} epochs",
        pcstall.accuracy * 100.0,
        pcstall.epochs
    );
    let states = dvfs::states::FreqStates::paper();
    println!("mean selected frequency: {:.0} MHz", pcstall.mean_freq_mhz(&states));
}
