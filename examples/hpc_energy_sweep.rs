//! HPC cluster scenario: compare DVFS designs across the ECP proxy
//! applications, the use case the paper's introduction motivates for
//! performance-oriented servers (ED²P).
//!
//! ```sh
//! cargo run --release --example hpc_energy_sweep
//! ```

use harness::report::{f3, markdown_table, pct};
use harness::runner::{run, run_static_baseline, RunConfig};
use harness::sweeps::default_threads;
use pcstall::estimators::CuEstimator;
use pcstall::policy::{PcStallConfig, PolicyKind};
use power::energy::geomean;
use workloads::{by_name, Scale};

fn main() {
    let apps = ["comd", "hpgmg", "xsbench", "hacc", "snapc"];
    let designs = [
        ("CRISP", PolicyKind::Reactive(CuEstimator::Crisp)),
        ("PCSTALL", PolicyKind::PcStall(PcStallConfig::default())),
        ("ORACLE", PolicyKind::Oracle),
    ];
    println!(
        "ED^2P vs static 1.7 GHz on a 16-CU GPU, 1 us epochs ({} worker threads available)",
        default_threads()
    );

    let mut rows = Vec::new();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); designs.len()];
    for name in apps {
        let app = by_name(name, Scale::Quick).expect("registered");
        let base_cfg = RunConfig::reduced(PolicyKind::Static(1700));
        let baseline = run_static_baseline(&app, &base_cfg);
        let mut row = vec![name.to_string()];
        for (di, (_, policy)) in designs.iter().enumerate() {
            let cfg = RunConfig { policy: *policy, ..base_cfg.clone() };
            let r = run(&app, &cfg);
            let ratio = r.metrics.ed2p_vs(&baseline.metrics);
            ratios[di].push(ratio);
            row.push(f3(ratio));
        }
        rows.push(row);
    }
    let mut geo_row = vec!["**geomean**".to_string()];
    let mut improvements = Vec::new();
    for r in &ratios {
        let g = geomean(r);
        improvements.push(1.0 - g);
        geo_row.push(f3(g));
    }
    rows.push(geo_row);

    println!();
    println!("{}", markdown_table(&["app", "CRISP", "PCSTALL", "ORACLE"], &rows));
    println!(
        "PCSTALL captures {} ED^2P improvement vs CRISP's {} (ORACLE: {}).",
        pct(improvements[1]),
        pct(improvements[0]),
        pct(improvements[2]),
    );
}
