//! Terminal rendering of the paper's time-series figures: per-CU
//! sensitivity traces (Fig. 6) and per-wavefront contributions (Fig. 8),
//! drawn as Unicode strip charts.
//!
//! ```sh
//! cargo run --release --example plot_profiles
//! ```

use gpu_sim::config::GpuConfig;
use gpu_sim::time::Femtos;
use harness::ascii::{bar_chart, sparkline, strip_chart};
use harness::studies::probe_series;
use workloads::{by_name, Scale};

fn main() {
    let gpu_cfg = GpuConfig::small();
    let epochs = 30;

    println!("=== Fig. 6: per-epoch CU sensitivity (1 us), CU 0 ===\n");
    let mut series = Vec::new();
    for name in ["dgemm", "hacc", "BwdBN", "xsbench"] {
        let app = by_name(name, Scale::Quick).expect("registered");
        let probe = probe_series(&app, &gpu_cfg, Femtos::from_micros(1), epochs);
        let trace = probe.cu_trace(0);
        let mean = trace.iter().sum::<f64>() / trace.len().max(1) as f64;
        series.push((format!("{name} (mean S {mean:.2})"), trace));
    }
    println!("{}\n", strip_chart(&series));

    println!("=== Fig. 8: per-wavefront sensitivity, BwdBN CU 0 (first 8 slots) ===\n");
    let app = by_name("BwdBN", Scale::Quick).expect("registered");
    let probe = probe_series(&app, &gpu_cfg, Femtos::from_micros(1), epochs);
    let wf_traces = probe.wavefront_traces(0);
    let mut slots = Vec::new();
    for slot in 0..8 {
        let trace: Vec<f64> = wf_traces.iter().map(|epoch| epoch[slot]).collect();
        slots.push((format!("wf slot {slot}"), trace));
    }
    println!("{}\n", strip_chart(&slots));

    println!("=== Fig. 7a: epoch-to-epoch sensitivity variability ===\n");
    let mut rows = Vec::new();
    for name in ["dgemm", "BwdSoft", "hacc", "comd", "BwdBN", "hpgmg", "xsbench"] {
        let app = by_name(name, Scale::Quick).expect("registered");
        let probe = probe_series(&app, &gpu_cfg, Femtos::from_micros(1), epochs);
        rows.push((name.to_string(), probe.epoch_to_epoch_variability()));
    }
    println!("{}", bar_chart(&rows, 40));

    println!(
        "\n(legend: each cell is one 1 us epoch; ramp {} = low..high)",
        sparkline(&[0.0, 0.33, 0.66, 1.0])
    );
}
