//! Datacenter ML scenario: save energy on inference/training kernels while
//! guaranteeing a performance-degradation SLO — the paper's Section 6.4
//! objective (`EnergyUnderPerfLoss`).
//!
//! ```sh
//! cargo run --release --example ml_inference_tuning
//! ```

use dvfs::objective::Objective;
use harness::report::{markdown_table, pct};
use harness::runner::{run, RunConfig};
use pcstall::policy::{PcStallConfig, PolicyKind};
use workloads::{by_name, Scale};

fn main() {
    let apps = ["FwdBN", "FwdPool", "FwdSoft", "dgemm"];
    println!("energy savings vs full-speed (static 2.2 GHz) under a perf-loss SLO");
    println!("(16-CU GPU, 1 us epochs, PCSTALL prediction)\n");

    let mut rows = Vec::new();
    for limit in [0.05, 0.10] {
        let mut row = vec![format!("{}% SLO", (limit * 100.0) as u32)];
        for name in apps {
            let app = by_name(name, Scale::Quick).expect("registered");
            // Full-performance reference.
            let mut ref_cfg = RunConfig::reduced(PolicyKind::Static(2200));
            ref_cfg.objective = Objective::EnergyUnderPerfLoss(limit);
            let reference = run(&app, &ref_cfg);
            // PCSTALL under the SLO.
            let cfg = RunConfig {
                policy: PolicyKind::PcStall(PcStallConfig::default()),
                ..ref_cfg.clone()
            };
            let r = run(&app, &cfg);
            let savings = 1.0 - r.metrics.energy_vs(&reference.metrics);
            let loss = r.metrics.perf_loss_vs(&reference.metrics);
            row.push(format!("{} (loss {})", pct(savings), pct(loss.max(0.0))));
        }
        rows.push(row);
    }
    let mut headers = vec!["limit"];
    headers.extend(apps);
    println!("{}", markdown_table(&headers, &rows));
    println!("Paper reference: 9.6% savings at the 5% limit, 19.9% at 10% (PCSTALL, Fig. 18a).");
}
