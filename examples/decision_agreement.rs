//! How often does each design choose the V/f state the oracle would?
//!
//! Prediction accuracy (Fig. 14) scores instruction-count estimates; this
//! study scores the *decision* itself — the most direct measure of what
//! separates "predict" from "react".
//!
//! ```sh
//! cargo run --release --example decision_agreement
//! ```

use gpu_sim::config::GpuConfig;
use harness::agreement::measure;
use harness::runner::RunConfig;
use pcstall::estimators::CuEstimator;
use pcstall::policy::{PcStallConfig, PolicyKind};
use workloads::{by_name, Scale};

fn main() {
    let apps = ["comd", "hacc", "dgemm", "xsbench"];
    let designs = [
        ("STATIC-1700", PolicyKind::Static(1700)),
        ("CRISP", PolicyKind::Reactive(CuEstimator::Crisp)),
        ("PCSTALL", PolicyKind::PcStall(PcStallConfig::default())),
        ("ORACLE", PolicyKind::Oracle),
    ];
    println!("agreement with the oracle's per-domain state choice (tiny GPU, 40 epochs)\n");
    println!("{:12} {:>8} {:>10} {:>10}", "design", "exact", "within ±1", "mean dist");
    for (name, policy) in designs {
        let mut exact = 0.0;
        let mut within = 0.0;
        let mut dist = 0.0;
        for app_name in apps {
            let app = by_name(app_name, Scale::Quick).expect("registered");
            let mut cfg = RunConfig::reduced(policy);
            cfg.gpu = GpuConfig::tiny();
            let a = measure(&app, &cfg, 40);
            exact += a.exact_rate();
            within += a.within_one_rate();
            dist += a.mean_distance();
        }
        let n = apps.len() as f64;
        println!(
            "{name:12} {:>7.1}% {:>9.1}% {:>10.2}",
            100.0 * exact / n,
            100.0 * within / n,
            dist / n
        );
    }
}
